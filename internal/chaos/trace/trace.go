// Package trace records and replays campaign schedule traces: the
// compact, checksummed JSONL files that turn a chaos-found failure
// into a committed regression (DESIGN.md §11).
//
// A trace is one header line, one line per campaign round, and a
// footer carrying a CRC-32C over every preceding byte. The header
// names the campaign kind and its full configuration (workload, procs,
// ops, seed, replica count); each round line records what the seeded
// schedule chose (derived run seed, fired crash sites, fault kind and
// target, kill delay, virtual-time advance) and what the run concluded
// (verdict, stuck, partial — or, for the real-kill kinds, the observed
// kill phase and recovery report).
//
// Replay reads a trace, re-executes the campaign it describes, and
// diffs the fresh trace against the recorded one with Diff, which
// returns the first divergent (round, field, want, got) — the
// structured "the code's behavior has drifted" verdict. Which fields
// Diff compares depends on the kind: simulated campaigns are
// deterministic end-to-end, so every field must match; the SIGKILL
// kinds re-derive their schedule choices from the seed (those must
// match) but observe real process timing (kill phase, recovered
// length), which replays report but do not gate on.
package trace

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
)

// Version identifies the trace schema; Decode rejects others.
const Version = "nrl-schedtrace/1"

// Trace kinds: which campaign produced the rounds, and therefore which
// round fields are deterministic under replay.
const (
	// KindCampaign is a simulated chaos.Run campaign — fully
	// deterministic, every round field gates the replay.
	KindCampaign = "campaign"
	// KindRegression is a minimized single-run reproducer (the shrunk
	// crash placement of one failure), the format of the committed
	// corpus under internal/chaos/testdata/regressions.
	KindRegression = "regression"
	// KindKill is a real SIGKILL campaign: the kill-delay schedule is
	// deterministic, the kill outcomes are observed.
	KindKill = "kill"
	// KindReplKill is the replica-fault SIGKILL campaign: fault kind,
	// target, arming window, worker seed and kill delay are
	// deterministic; outcomes are observed.
	KindReplKill = "replkill"
)

// Header is the first trace line: the campaign's identity and full
// configuration, enough to re-execute it from scratch.
type Header struct {
	Version string `json:"v"`
	Kind    string `json:"kind"`
	// Seed is the campaign master seed every schedule stream splits
	// from.
	Seed int64 `json:"seed"`
	// Workload/Procs/Ops/Runs shape simulated campaigns;
	// Rate/Boost/MaxCrashes/Target are their guided-injector tuning
	// (recorded because the schedule is a function of them too).
	Workload   string  `json:"workload,omitempty"`
	Procs      int     `json:"procs,omitempty"`
	Ops        int     `json:"ops,omitempty"`
	Runs       int     `json:"runs,omitempty"`
	Rate       float64 `json:"rate,omitempty"`
	Boost      float64 `json:"boost,omitempty"`
	MaxCrashes int     `json:"max_crashes,omitempty"`
	Target     string  `json:"target,omitempty"`
	// Rounds/Appends/Capacity/Replicas/MaxDelayUS shape the kill kinds.
	Rounds     int   `json:"rounds,omitempty"`
	Appends    int   `json:"appends,omitempty"`
	Capacity   int   `json:"capacity,omitempty"`
	Replicas   int   `json:"replicas,omitempty"`
	MaxDelayUS int64 `json:"max_delay_us,omitempty"`
	// Note is free-form provenance ("found by nrlchaos -runs 500 …").
	Note string `json:"note,omitempty"`
}

// Round is one campaign round's schedule choices and outcome. Fields
// are grouped by replay semantics; zero values are omitted so a trace
// line carries only what its kind populates.
type Round struct {
	Round int `json:"round"`
	// Seed is the round's derived seed: the run seed of a simulated
	// campaign, the worker jitter seed of a replkill round.
	Seed int64 `json:"seed,omitempty"`

	// Schedule choices — deterministic for every kind.
	//
	// Sites is the fired crash placement (FormatSites form); Crashes
	// its count. Fault/FaultDir/FaultAfter/FaultFor are the replica
	// injury and its arming window; DelayUS the chosen kill delay.
	Sites      string `json:"sites,omitempty"`
	Crashes    int    `json:"crashes,omitempty"`
	Fault      string `json:"fault,omitempty"`
	FaultDir   int    `json:"fault_dir,omitempty"`
	FaultAfter int    `json:"fault_after,omitempty"`
	FaultFor   int    `json:"fault_for,omitempty"`
	DelayUS    int64  `json:"delay_us,omitempty"`
	// VTimeUS is the round's virtual-time advance (vclock sleeps plus
	// the scheduled delay), deterministic alongside the choices above.
	VTimeUS int64 `json:"vtime_us,omitempty"`

	// Simulated-campaign verdicts — deterministic for KindCampaign and
	// KindRegression, absent for the kill kinds.
	Stuck     bool   `json:"stuck,omitempty"`
	Partial   bool   `json:"partial,omitempty"`
	Violation string `json:"violation,omitempty"`

	// Observed outcomes — real process timing; recorded for forensics,
	// never gated on by Diff.
	Killed    bool   `json:"killed,omitempty"`
	Phase     string `json:"phase,omitempty"`
	Exit      int    `json:"exit,omitempty"`
	Recovered uint64 `json:"recovered,omitempty"`
	Acked     uint64 `json:"acked,omitempty"`
}

// footer is the last trace line: the round count and the CRC-32C
// (Castagnoli) of every byte before it.
type footer struct {
	Rounds int    `json:"rounds"`
	Sum    string `json:"sum"`
}

// Trace is a decoded schedule trace.
type Trace struct {
	Header Header
	Rounds []Round
}

// ErrCorrupt reports a trace file that failed structural or checksum
// validation; the wrapped detail says which.
var ErrCorrupt = errors.New("schedule trace corrupt")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Encode renders the trace as checksummed JSONL. Encoding is
// deterministic (fixed field order, no map iteration), so two
// identical campaigns encode byte-identically — the property the
// double-run determinism test pins.
func (t *Trace) Encode() ([]byte, error) {
	var buf bytes.Buffer
	h := t.Header
	h.Version = Version
	if err := writeLine(&buf, h); err != nil {
		return nil, err
	}
	for _, r := range t.Rounds {
		if err := writeLine(&buf, r); err != nil {
			return nil, err
		}
	}
	sum := crc32.Checksum(buf.Bytes(), castagnoli)
	if err := writeLine(&buf, footer{Rounds: len(t.Rounds), Sum: fmt.Sprintf("crc32c:%08x", sum)}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func writeLine(buf *bytes.Buffer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	buf.Write(b)
	buf.WriteByte('\n')
	return nil
}

// WriteFile encodes the trace into path (0644, truncating).
func (t *Trace) WriteFile(path string) error {
	b, err := t.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// Decode parses a checksummed JSONL trace, validating the version, the
// footer checksum and the round count. Damage yields ErrCorrupt.
func Decode(data []byte) (*Trace, error) {
	lines := bytes.Split(bytes.TrimRight(data, "\n"), []byte("\n"))
	if len(lines) < 2 {
		return nil, fmt.Errorf("%w: %d lines, want header + footer at least", ErrCorrupt, len(lines))
	}
	var ft footer
	ftLine := lines[len(lines)-1]
	if err := json.Unmarshal(ftLine, &ft); err != nil || ft.Sum == "" {
		return nil, fmt.Errorf("%w: unparseable footer", ErrCorrupt)
	}
	body := data[:bytes.LastIndex(data, ftLine)]
	if got := fmt.Sprintf("crc32c:%08x", crc32.Checksum(body, castagnoli)); got != ft.Sum {
		return nil, fmt.Errorf("%w: checksum %s, footer says %s", ErrCorrupt, got, ft.Sum)
	}
	t := &Trace{}
	if err := json.Unmarshal(lines[0], &t.Header); err != nil {
		return nil, fmt.Errorf("%w: bad header: %v", ErrCorrupt, err)
	}
	if t.Header.Version != Version {
		return nil, fmt.Errorf("%w: version %q, want %q", ErrCorrupt, t.Header.Version, Version)
	}
	for i, ln := range lines[1 : len(lines)-1] {
		var r Round
		if err := json.Unmarshal(ln, &r); err != nil {
			return nil, fmt.Errorf("%w: bad round line %d: %v", ErrCorrupt, i, err)
		}
		t.Rounds = append(t.Rounds, r)
	}
	if len(t.Rounds) != ft.Rounds {
		return nil, fmt.Errorf("%w: %d round lines, footer says %d", ErrCorrupt, len(t.Rounds), ft.Rounds)
	}
	return t, nil
}

// ReadFile reads and decodes the trace at path.
func ReadFile(path string) (*Trace, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	t, err := Decode(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// Divergence is Diff's verdict: the first field whose replayed value
// departs from the recorded one. Round is -1 for header-level
// divergence (the replay was configured differently — not drift, a
// usage error).
type Divergence struct {
	Round int
	Field string
	Want  string
	Got   string
}

// Error renders the divergence in the structured round/field/want/got
// form the CLIs print and the drift tests grep.
func (d *Divergence) Error() string {
	if d.Round < 0 {
		return fmt.Sprintf("trace header diverged: %s: recorded %s, replay %s", d.Field, d.Want, d.Got)
	}
	return fmt.Sprintf("trace diverged at round %d: %s: recorded %s, replay %s", d.Round, d.Field, d.Want, d.Got)
}

// field is one gated comparison of a round.
type field struct {
	name string
	get  func(*Round) string
}

func str(v any) string { return fmt.Sprintf("%v", v) }

// scheduleFields are deterministic for every kind: they are pure
// functions of the campaign seed.
var scheduleFields = []field{
	{"seed", func(r *Round) string { return str(r.Seed) }},
	{"sites", func(r *Round) string { return r.Sites }},
	{"crashes", func(r *Round) string { return str(r.Crashes) }},
	{"fault", func(r *Round) string { return r.Fault }},
	{"fault_dir", func(r *Round) string { return str(r.FaultDir) }},
	{"fault_after", func(r *Round) string { return str(r.FaultAfter) }},
	{"fault_for", func(r *Round) string { return str(r.FaultFor) }},
	{"delay_us", func(r *Round) string { return str(r.DelayUS) }},
}

// verdictFields are deterministic only when the whole execution is
// simulated (KindCampaign, KindRegression).
var verdictFields = []field{
	{"stuck", func(r *Round) string { return str(r.Stuck) }},
	{"partial", func(r *Round) string { return str(r.Partial) }},
	{"violation", func(r *Round) string { return r.Violation }},
	{"vtime_us", func(r *Round) string { return str(r.VTimeUS) }},
}

// Deterministic reports whether kind's verdict fields replay exactly
// (true for the simulated kinds, false for the SIGKILL kinds, whose
// outcomes ride real process timing).
func Deterministic(kind string) bool {
	return kind == KindCampaign || kind == KindRegression
}

// Diff compares a replayed trace against the recorded one and returns
// the first divergence in round order (schedule fields first within a
// round), or nil when the replay matches. Headers gate first: a
// mismatched configuration is reported as Round -1.
func Diff(want, got *Trace) *Divergence {
	type hf struct{ name, w, g string }
	hw, hg := want.Header, got.Header
	for _, f := range []hf{
		{"kind", hw.Kind, hg.Kind},
		{"workload", hw.Workload, hg.Workload},
		{"seed", str(hw.Seed), str(hg.Seed)},
		{"procs", str(hw.Procs), str(hg.Procs)},
		{"ops", str(hw.Ops), str(hg.Ops)},
		{"runs", str(hw.Runs), str(hg.Runs)},
		{"rate", str(hw.Rate), str(hg.Rate)},
		{"boost", str(hw.Boost), str(hg.Boost)},
		{"max_crashes", str(hw.MaxCrashes), str(hg.MaxCrashes)},
		{"target", hw.Target, hg.Target},
		{"rounds", str(hw.Rounds), str(hg.Rounds)},
		{"appends", str(hw.Appends), str(hg.Appends)},
		{"replicas", str(hw.Replicas), str(hg.Replicas)},
	} {
		if f.w != f.g {
			return &Divergence{Round: -1, Field: f.name, Want: f.w, Got: f.g}
		}
	}
	fields := scheduleFields
	if Deterministic(want.Header.Kind) {
		fields = append(append([]field{}, scheduleFields...), verdictFields...)
	}
	n := len(want.Rounds)
	if len(got.Rounds) < n {
		n = len(got.Rounds)
	}
	for i := 0; i < n; i++ {
		w, g := want.Rounds[i], got.Rounds[i]
		for _, f := range fields {
			if fw, fg := f.get(&w), f.get(&g); fw != fg {
				return &Divergence{Round: w.Round, Field: f.name, Want: fw, Got: fg}
			}
		}
	}
	if len(want.Rounds) != len(got.Rounds) {
		return &Divergence{Round: n, Field: "round_count",
			Want: str(len(want.Rounds)), Got: str(len(got.Rounds))}
	}
	return nil
}
