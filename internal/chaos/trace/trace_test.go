package trace_test

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"

	schedtrace "nrl/internal/chaos/trace"
)

func sample() *schedtrace.Trace {
	return &schedtrace.Trace{
		Header: schedtrace.Header{
			Kind: schedtrace.KindCampaign, Workload: "counter",
			Procs: 2, Ops: 2, Runs: 3, Seed: 42,
		},
		Rounds: []schedtrace.Round{
			{Round: 0, Seed: 111, Sites: "p1@3", Crashes: 1, VTimeUS: 10},
			{Round: 1, Seed: 222, Crashes: 0},
			{Round: 2, Seed: 333, Sites: "p1@5,p2@9", Crashes: 2, Violation: "NRL violation: ..."},
		},
	}
}

// TestRoundTrip: Encode → Decode is the identity, and encoding is
// byte-stable across calls.
func TestRoundTrip(t *testing.T) {
	tr := sample()
	b1, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := tr.Encode()
	if string(b1) != string(b2) {
		t.Fatalf("encoding not deterministic")
	}
	got, err := schedtrace.Decode(b1)
	if err != nil {
		t.Fatal(err)
	}
	if d := schedtrace.Diff(tr, got); d != nil {
		t.Fatalf("roundtrip diverged: %v", d)
	}
	if got.Header.Version != schedtrace.Version {
		t.Fatalf("decoded version %q", got.Header.Version)
	}
}

// TestFileRoundTrip: WriteFile/ReadFile carry the trace intact.
func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.jsonl")
	tr := sample()
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := schedtrace.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if d := schedtrace.Diff(tr, got); d != nil {
		t.Fatalf("file roundtrip diverged: %v", d)
	}
}

// TestChecksumRejectsFlips: flipping any payload byte must surface as
// ErrCorrupt, not as silently different rounds.
func TestChecksumRejectsFlips(t *testing.T) {
	b, _ := sample().Encode()
	for _, off := range []int{0, len(b) / 3, len(b) / 2} {
		mut := append([]byte(nil), b...)
		mut[off] ^= 0x20 // case-flip inside JSON keeps it parseable more often than bit soup
		if _, err := schedtrace.Decode(mut); !errors.Is(err, schedtrace.ErrCorrupt) {
			t.Fatalf("flip at %d: err = %v, want ErrCorrupt", off, err)
		}
	}
}

// TestTruncationRejected: losing a round line breaks the footer count
// or the checksum, never decodes short.
func TestTruncationRejected(t *testing.T) {
	b, _ := sample().Encode()
	lines := strings.SplitAfter(string(b), "\n")
	// Drop one round line, keep header + remaining rounds + footer.
	trunc := strings.Join(append(append([]string{}, lines[0]), lines[2:]...), "")
	if _, err := schedtrace.Decode([]byte(trunc)); !errors.Is(err, schedtrace.ErrCorrupt) {
		t.Fatalf("truncated trace decoded: err = %v", err)
	}
}

// TestDiffFindsFirstDivergentRound: a drifted field is named with its
// round, field, and both values — the replay drift verdict.
func TestDiffFindsFirstDivergentRound(t *testing.T) {
	want, got := sample(), sample()
	got.Rounds[1].Crashes = 7
	got.Rounds[2].Violation = "" // later drift must not mask round 1
	d := schedtrace.Diff(want, got)
	if d == nil {
		t.Fatal("no divergence found")
	}
	if d.Round != 1 || d.Field != "crashes" || d.Want != "0" || d.Got != "7" {
		t.Fatalf("divergence = %+v, want round 1 crashes 0→7", d)
	}
	if msg := d.Error(); !strings.Contains(msg, "round 1") || !strings.Contains(msg, "crashes") {
		t.Fatalf("divergence message %q lacks round/field", msg)
	}
}

// TestDiffHeaderGate: a replay against a different configuration is a
// header divergence at round -1, not a round-by-round mess.
func TestDiffHeaderGate(t *testing.T) {
	want, got := sample(), sample()
	got.Header.Seed = 43
	d := schedtrace.Diff(want, got)
	if d == nil || d.Round != -1 || d.Field != "seed" {
		t.Fatalf("divergence = %+v, want header seed", d)
	}
}

// TestDiffRoundCount: a replay that lost rounds diverges on the count
// once the shared prefix matches.
func TestDiffRoundCount(t *testing.T) {
	want, got := sample(), sample()
	got.Rounds = got.Rounds[:2]
	got.Header.Runs = want.Header.Runs // isolate the round-count check
	d := schedtrace.Diff(want, got)
	if d == nil || d.Field != "round_count" || d.Want != "3" || d.Got != "2" {
		t.Fatalf("divergence = %+v, want round_count 3→2", d)
	}
}

// TestKillKindIgnoresObserved: for a SIGKILL trace the observed fields
// (phase, recovered length) may drift — only the schedule gates.
func TestKillKindIgnoresObserved(t *testing.T) {
	want := &schedtrace.Trace{
		Header: schedtrace.Header{Kind: schedtrace.KindKill, Seed: 1, Rounds: 2},
		Rounds: []schedtrace.Round{
			{Round: 0, DelayUS: 17000, Killed: true, Phase: "dirty", Recovered: 9},
			{Round: 1, DelayUS: 4000, Killed: false, Phase: "", Recovered: 40},
		},
	}
	got := &schedtrace.Trace{Header: want.Header}
	got.Rounds = append(got.Rounds, want.Rounds...)
	got.Rounds[0].Phase = "fenced" // observed drift: fine
	got.Rounds[0].Recovered = 11
	if d := schedtrace.Diff(want, got); d != nil {
		t.Fatalf("observed drift gated a kill trace: %v", d)
	}
	got.Rounds[1].DelayUS = 5000 // schedule drift: not fine
	d := schedtrace.Diff(want, got)
	if d == nil || d.Round != 1 || d.Field != "delay_us" {
		t.Fatalf("divergence = %+v, want round 1 delay_us", d)
	}
}
