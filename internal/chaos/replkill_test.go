package chaos_test

import (
	"os"
	"os/exec"
	"strconv"
	"testing"

	"nrl/internal/chaos"
)

// TestReplKillWorkerProcess is not a test: it is the replica kill-
// harness worker body, re-executed as a subprocess by the campaign
// tests below. It does nothing unless the NRL_REPL_WORKER environment
// guard is set.
func TestReplKillWorkerProcess(t *testing.T) {
	if os.Getenv("NRL_REPL_WORKER") == "" {
		t.Skip("not a worker invocation")
	}
	atoi := func(k string, def int) int {
		if v := os.Getenv(k); v != "" {
			if n, err := strconv.Atoi(v); err == nil {
				return n
			}
		}
		return def
	}
	var seed int64
	if v := os.Getenv("NRL_REPL_SEED"); v != "" {
		seed, _ = strconv.ParseInt(v, 10, 64)
	}
	cfg := chaos.ReplKillWorkerConfig{
		Root:       os.Getenv("NRL_REPL_ROOT"),
		Replicas:   atoi("NRL_REPL_REPLICAS", 3),
		Appends:    atoi("NRL_REPL_APPENDS", 3),
		Capacity:   atoi("NRL_REPL_CAPACITY", 4096),
		FaultDir:   atoi("NRL_REPL_FAULTDIR", -1),
		FaultAfter: atoi("NRL_REPL_FAULTAFTER", 0),
		FaultFor:   atoi("NRL_REPL_FAULTFOR", 0),
		Seed:       seed,
		Verify:     os.Getenv("NRL_REPL_VERIFY") != "",
	}
	os.Exit(chaos.RunReplKillWorker(cfg, os.Stdout))
}

// selfReplWorker builds a Worker function that re-executes this test
// binary as the replica kill worker.
func selfReplWorker(t *testing.T, root string, replicas, appends, capacity int) func(bool, int, int, int, int64) *exec.Cmd {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	return func(verify bool, faultDir, faultAfter, faultFor int, seed int64) *exec.Cmd {
		cmd := exec.Command(exe, "-test.run=TestReplKillWorkerProcess")
		cmd.Env = append(os.Environ(),
			"NRL_REPL_WORKER=1",
			"NRL_REPL_ROOT="+root,
			"NRL_REPL_REPLICAS="+strconv.Itoa(replicas),
			"NRL_REPL_APPENDS="+strconv.Itoa(appends),
			"NRL_REPL_CAPACITY="+strconv.Itoa(capacity),
			"NRL_REPL_FAULTDIR="+strconv.Itoa(faultDir),
			"NRL_REPL_FAULTAFTER="+strconv.Itoa(faultAfter),
			"NRL_REPL_FAULTFOR="+strconv.Itoa(faultFor),
			"NRL_REPL_SEED="+strconv.FormatInt(seed, 10),
		)
		if verify {
			cmd.Env = append(cmd.Env, "NRL_REPL_VERIFY=1")
		}
		return cmd
	}
}

func runReplCampaign(t *testing.T, rounds, appends int, seed int64) *chaos.ReplKillResult {
	t.Helper()
	root := t.TempDir()
	res, err := chaos.RunReplKillCampaign(chaos.ReplKillConfig{
		Rounds:       rounds,
		Seed:         seed,
		MaxKillDelay: replKillMaxDelay,
		Root:         root,
		Replicas:     3,
		Appends:      appends,
		Worker:       selfReplWorker(t, root, 3, appends, 16384),
	})
	if err != nil {
		t.Fatalf("RunReplKillCampaign: %v", err)
	}
	for _, f := range res.Failures {
		t.Errorf("violation: %s", f)
	}
	if t.Failed() {
		for _, tr := range res.Transcripts {
			t.Logf("transcript:\n%s", tr)
		}
	}
	return res
}

// TestReplKillCampaignSmoke is the always-on quick version of the
// issue's 200-round replica-fault acceptance run.
func TestReplKillCampaignSmoke(t *testing.T) {
	res := runReplCampaign(t, 10, 8, 11)
	if res.Kills+res.CleanExits != 10 {
		t.Fatalf("rounds accounted = %d+%d, want 10", res.Kills, res.CleanExits)
	}
	if len(res.Faults) == 0 {
		t.Error("no replica faults were injected")
	}
	t.Logf("smoke: kills=%d clean=%d finalLen=%d finalEpoch=%d promos=%d heals=%d faults=%v leaderFaults=%d\n%s",
		res.Kills, res.CleanExits, res.FinalLen, res.FinalEpoch,
		res.Promotions, res.Heals, res.Faults, res.LeaderFaults, res.Phases)
}

// TestReplKillCampaign200Rounds is the acceptance criterion: 200 seeded
// rounds, each SIGKILLing the process and wiping, corrupting, or
// disk-faulting one replica directory; every recovery lands on a
// linearizable state containing every acked append, a degraded leader
// always ends in a promoted follower that keeps accepting writes, and
// no round ends sticky read-only while a healthy replica exists.
func TestReplKillCampaign200Rounds(t *testing.T) {
	if testing.Short() {
		t.Skip("200-round replica campaign skipped in -short mode")
	}
	res := runReplCampaign(t, replAcceptanceRounds, 20, 1)
	if res.Kills == 0 {
		t.Fatalf("%d rounds produced no kills; campaign exercised nothing", replAcceptanceRounds)
	}
	for _, kind := range []string{"wipe", "corrupt", "disk"} {
		if res.Faults[kind] == 0 {
			t.Errorf("no round drew the %s fault; coverage hole", kind)
		}
	}
	if res.Promotions == 0 {
		t.Error("no incarnation promoted a follower; leader disk faults never ended in failover")
	}
	if res.Heals == 0 {
		t.Error("no incarnation healed a follower back in")
	}
	t.Logf("%d rounds: kills=%d clean=%d finalLen=%d finalEpoch=%d promos=%d heals=%d faults=%v leaderFaults=%d\n%s",
		replAcceptanceRounds, res.Kills, res.CleanExits, res.FinalLen, res.FinalEpoch,
		res.Promotions, res.Heals, res.Faults, res.LeaderFaults, res.Phases)
}
