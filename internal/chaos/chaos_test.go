package chaos

import (
	"errors"
	"strings"
	"testing"

	"nrl/internal/harness"
	"nrl/internal/proc"
)

func workload(t *testing.T, name string) harness.Workload {
	t.Helper()
	w, ok := harness.WorkloadByName(name)
	if !ok {
		t.Fatalf("workload %q missing", name)
	}
	return w
}

// TestCampaignFindsAndShrinksBroken is the negative-control acceptance
// test: a seeded campaign on the broken strawman must find an NRL
// violation, shrink it to a reproducer of at most 3 crash sites, and the
// printed (seed, sites) pair must replay to the same violating history
// twice — i.e. the reproducer really is deterministic.
func TestCampaignFindsAndShrinksBroken(t *testing.T) {
	res, err := Run(Config{
		Workload: workload(t, "broken"),
		Procs:    1, Ops: 2,
		Runs: 30, Seed: 42,
		Shrink: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := res.Failure
	if f == nil {
		t.Fatal("campaign found no violation in the broken counter")
	}
	if len(f.Shrunk) == 0 || len(f.Shrunk) > 3 {
		t.Fatalf("shrunk reproducer has %d sites (%s), want 1..3", len(f.Shrunk), FormatSites(f.Shrunk))
	}
	if len(f.Shrunk) > len(f.Sites) {
		t.Errorf("shrink grew the site list: %d -> %d", len(f.Sites), len(f.Shrunk))
	}
	// Round-trip through the printed flag syntax, then replay twice.
	sites, err := ParseSites(FormatSites(f.Shrunk))
	if err != nil {
		t.Fatalf("printed sites do not re-parse: %v", err)
	}
	w := workload(t, "broken")
	h1, v1 := Replay(w, 1, 2, f.RunSeed, sites, 0, 0)
	h2, v2 := Replay(w, 1, 2, f.RunSeed, sites, 0, 0)
	if v1 == nil || v2 == nil {
		t.Fatalf("shrunk reproducer does not reproduce: %v / %v", v1, v2)
	}
	if h1.String() != h2.String() {
		t.Error("replay is not deterministic: histories differ")
	}
	t.Logf("violation at run %d seed %d, %d sites -> %d shrunk (%s) in %d replays:\n  %v",
		f.Run, f.RunSeed, len(f.Sites), len(f.Shrunk), FormatSites(f.Shrunk), f.ShrinkRuns, f.Err)
}

// TestCampaignCleanOnRealObjects runs the campaign over the paper's
// Algorithms 1–4 (register, CAS, TAS, counter): no violation may be
// found, no run may end stuck, and the guided injector must have crashed
// at least 90% of the crash coordinates it discovered.
func TestCampaignCleanOnRealObjects(t *testing.T) {
	for _, name := range []string{"register", "cas", "tas", "counter"} {
		name := name
		t.Run(name, func(t *testing.T) {
			res, err := Run(Config{
				Workload: workload(t, name),
				Procs:    2, Ops: 2,
				Runs: 60, Seed: 7,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Failure != nil {
				t.Fatalf("campaign reported a violation on a correct object: %v\nsites: %s",
					res.Failure.Err, FormatSites(res.Failure.Sites))
			}
			if res.Stuck != 0 {
				t.Errorf("%d runs stuck; first:\n%s", res.Stuck, res.FirstStuck.String())
			}
			d, c := res.Coverage.Stats()
			if frac := res.Coverage.Fraction(); frac < 0.9 {
				t.Errorf("coverage %.0f%% (%d/%d coords crashed), want >= 90%%", frac*100, c, d)
			}
			t.Logf("%s: %d runs, %d crashes, %d/%d coords (%.0f%%)",
				name, res.Runs, res.Crashes, c, d, res.Coverage.Fraction()*100)
		})
	}
}

// TestCampaignStuckEndsInReport: the stuck strawman livelocks after any
// crash; the campaign must never panic — every stuck run ends in a
// structured StuckReport with a verdict.
func TestCampaignStuckEndsInReport(t *testing.T) {
	res, err := Run(Config{
		Workload: workload(t, "stuck"),
		Procs:    2, Ops: 1,
		Runs: 5, Seed: 3,
		AwaitBudget: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stuck == 0 {
		t.Fatal("no run of the stuck strawman got stuck")
	}
	if res.FirstStuck == nil {
		t.Fatal("stuck runs recorded but no report retained")
	}
	if !strings.Contains(res.FirstStuck.String(), "verdict:") {
		t.Errorf("report has no verdict:\n%s", res.FirstStuck.String())
	}
}

// TestCampaignTargetRestrictsCrashes: with -target recovery, every crash
// the campaign fires must land on a recovery-path line. The placement is
// verified by replaying the recorded sites against a point logger.
func TestCampaignTargetRestrictsCrashes(t *testing.T) {
	cov := NewCoverage()
	target, err := ParseTarget("recovery")
	if err != nil {
		t.Fatal(err)
	}
	w := workload(t, "counter")
	// Seed a first crash so recovery code is reachable, then the guided
	// injector (restricted to recovery lines) does the rest.
	seedCrash := &proc.AtLine{Obj: "ctr", Op: "INC", Line: 4}
	g := NewGuided(cov, 99, 0.5, 2, 4, target)
	var recPoints, crashPoints int
	logger := proc.Func(func(pt proc.CrashPoint) bool {
		if pt.Recovery {
			recPoints++
		}
		return false
	})
	_, failures := execute(w, 2, 2, 5, proc.Multi{logger, seedCrash, g}, 0)
	for _, f := range failures {
		t.Fatalf("unexpected failure: %v", f)
	}
	crashPoints = g.Crashes()
	if recPoints == 0 {
		t.Fatal("no recovery points reached; seed crash misplaced")
	}
	if crashPoints == 0 {
		t.Fatal("guided injector fired nothing inside the target")
	}
}

// TestParseTarget covers the predicate grammar.
func TestParseTarget(t *testing.T) {
	pt := proc.CrashPoint{
		Proc: 1, Obj: "ctr", Op: "INC", Line: 4,
		Depth: 2, Attempt: 1, Crashes: 2, Recovery: true, Awaiting: false,
	}
	cases := []struct {
		expr string
		want bool
	}{
		{"", true},
		{"any", true},
		{"recovery", true},
		{"await", false},
		{"depth>=2", true},
		{"depth>=3", false},
		{"depth=2", true},
		{"attempt>=1", true},
		{"crashes>=3", false},
		{"line=4", true},
		{"obj=ctr", true},
		{"op=READ", false},
		{"recovery&depth>=2", true},
		{"recovery&await", false},
	}
	for _, tc := range cases {
		p, err := ParseTarget(tc.expr)
		if err != nil {
			t.Errorf("ParseTarget(%q): %v", tc.expr, err)
			continue
		}
		got := p == nil || p(pt)
		if got != tc.want {
			t.Errorf("target %q on %+v = %v, want %v", tc.expr, pt, got, tc.want)
		}
	}
	for _, bad := range []string{"bogus", "depth>=x", "line>=3", "&", "obj>=x"} {
		if _, err := ParseTarget(bad); err == nil {
			t.Errorf("ParseTarget(%q) accepted", bad)
		}
	}
}

// TestStagedAdversary fires on the k-th matching point only.
func TestStagedAdversary(t *testing.T) {
	target, _ := ParseTarget("recovery")
	s := &Staged{Target: target, Occurrence: 2}
	rec := proc.CrashPoint{Recovery: true}
	body := proc.CrashPoint{}
	if s.ShouldCrash(body) {
		t.Error("fired outside target")
	}
	if s.ShouldCrash(rec) {
		t.Error("fired on first occurrence, want second")
	}
	if !s.ShouldCrash(rec) {
		t.Error("did not fire on second occurrence")
	}
	if s.ShouldCrash(rec) {
		t.Error("fired twice")
	}
	if !s.Fired() {
		t.Error("Fired() false after firing")
	}
}

// TestSitesRoundTrip: parse/format are inverses; bad syntax is rejected.
func TestSitesRoundTrip(t *testing.T) {
	in := "p1@12,p2@40,p1@99"
	sites, err := ParseSites(in)
	if err != nil {
		t.Fatal(err)
	}
	if FormatSites(sites) != in {
		t.Errorf("round trip: %q -> %q", in, FormatSites(sites))
	}
	if got, _ := ParseSites(""); got != nil {
		t.Errorf("empty parse = %v, want nil", got)
	}
	for _, bad := range []string{"x1@2", "p0@2", "p1@0", "p1", "p1@x"} {
		if _, err := ParseSites(bad); err == nil {
			t.Errorf("ParseSites(%q) accepted", bad)
		}
	}
}

// TestGuidedBias: a fresh coordinate is crashed (boost makes p=1), and a
// repeatedly crashed coordinate's probability decays.
func TestGuidedBias(t *testing.T) {
	cov := NewCoverage()
	g := NewGuided(cov, 1, DefaultRate, DefaultBoost, 0, nil)
	pt := proc.CrashPoint{Proc: 1, Obj: "o", Op: "OP", Line: 1, Depth: 1, ProcStep: 1}
	if !g.ShouldCrash(pt) {
		t.Fatal("fresh coordinate not crashed despite boost 0.02*50=1.0")
	}
	// Same coordinate again: probability drops to rate/2 = 0.01; over 100
	// tries expect ~1 crash, certainly far fewer than 100.
	crashes := 0
	for i := 0; i < 100; i++ {
		pt.ProcStep++
		if g.ShouldCrash(pt) {
			crashes++
		}
	}
	if crashes > 20 {
		t.Errorf("covered coordinate crashed %d/100 times; bias not decaying", crashes)
	}
	if len(g.Sites()) != 1+crashes {
		t.Errorf("Sites() has %d entries, want %d", len(g.Sites()), 1+crashes)
	}
	if d, c := cov.Stats(); d != 1 || c != 1 {
		t.Errorf("coverage stats = (%d,%d), want (1,1)", d, c)
	}
}

// TestCheckWindowedPartial: an over-budget check degrades to a prefix
// verdict instead of an error.
func TestCheckWindowedPartial(t *testing.T) {
	w := workload(t, "counter")
	h, failures := execute(w, 2, 3, 11, proc.Never{}, 0)
	if len(failures) != 0 {
		t.Fatal(failures)
	}
	violation, partial := CheckWindowed(w.Models, h, 1)
	if violation != nil {
		t.Fatalf("windowed check reported violation: %v", violation)
	}
	if !partial {
		t.Error("1-node budget did not force a partial verdict")
	}
	violation, partial = CheckWindowed(w.Models, h, 0)
	if violation != nil || partial {
		t.Errorf("default budget: violation=%v partial=%v", violation, partial)
	}
}

// TestReplayStuckSurfacesWatchdog: replaying a placement that livelocks
// returns the StuckError rather than hanging.
func TestReplayStuckSurfacesWatchdog(t *testing.T) {
	w := workload(t, "stuck")
	// Crash p1 at its first step: recovery then awaits forever.
	_, err := Replay(w, 1, 1, 13, []CrashSite{{Proc: 1, Step: 1}}, 300, 0)
	var se *proc.StuckError
	if !errors.As(err, &se) {
		t.Fatalf("replay returned %v, want *StuckError", err)
	}
}
