//go:build race

package chaos_test

import "time"

// Campaign tuning under the race detector: instrumented workers take
// tens of milliseconds just to reach the workload, so the kill window
// widens, the round count drops, and phase diversity is not asserted —
// the race build exercises the harness for data races; the phase
// coverage acceptance runs on the uninstrumented build.
const (
	killAcceptanceRounds = 60
	killMaxDelay         = 250 * time.Millisecond
	killAssertPhases     = false
)

// Replica-campaign tuning under the race detector: fewer rounds, wider
// kill window, same invariants.
const (
	replAcceptanceRounds = 60
	replKillMaxDelay     = 300 * time.Millisecond
)
