package chaos

import (
	"sync"

	"nrl/internal/proc"
	"nrl/internal/vclock"
)

// Default bias parameters for the guided injector.
const (
	// DefaultRate is the base per-step crash probability for coordinates
	// that have already been crashed.
	DefaultRate = 0.02
	// DefaultBoost multiplies the rate for never-crashed coordinates:
	// 0.02 × 50 = 1.0, i.e. the frontier is crashed on sight.
	DefaultBoost = 50
)

// Guided is the coverage-guided injector: every offered crash point is
// recorded into the shared campaign Coverage, and the crash probability of
// a point is biased by its coordinate's history — never-crashed
// coordinates get Rate×Boost (clamped to 1), already-crashed coordinates
// decay as Rate/(1+crashes), so the campaign keeps pushing into whatever
// it has not broken yet.
//
// A Target predicate, when set, restricts where crashes may fire (points
// failing the predicate are still observed for coverage). MaxCrashes
// bounds the crashes of one run. Every fired crash is recorded as a
// deterministic CrashSite (process, per-process step) so the run can be
// replayed exactly without the injector's randomness.
type Guided struct {
	cov        *Coverage
	rate       float64
	boost      float64
	maxCrashes int
	target     Predicate

	mu      sync.Mutex
	rng     *vclock.Rand
	crashes int
	sites   []CrashSite
}

// NewGuided creates a guided injector for one run of a campaign. cov is
// shared across runs; seed derives this run's decision stream. rate and
// boost <= 0 apply the defaults; maxCrashes <= 0 means unlimited; target
// nil means anywhere.
func NewGuided(cov *Coverage, seed int64, rate, boost float64, maxCrashes int, target Predicate) *Guided {
	if rate <= 0 {
		rate = DefaultRate
	}
	if boost <= 0 {
		boost = DefaultBoost
	}
	return &Guided{
		cov:        cov,
		rate:       rate,
		boost:      boost,
		maxCrashes: maxCrashes,
		target:     target,
		rng:        vclock.NewSeeded(seed),
	}
}

// ShouldCrash implements proc.Injector.
func (g *Guided) ShouldCrash(pt proc.CrashPoint) bool {
	co := CoordOf(pt)
	crashed := g.cov.observe(co)
	if g.target != nil && !g.target(pt) {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.maxCrashes > 0 && g.crashes >= g.maxCrashes {
		return false
	}
	p := g.rate / float64(1+crashed)
	if crashed == 0 {
		p = g.rate * g.boost
		if p > 1 {
			p = 1
		}
	}
	if g.rng.Float64() >= p {
		return false
	}
	g.crashes++
	g.sites = append(g.sites, CrashSite{Proc: pt.Proc, Step: pt.ProcStep})
	g.cov.recordCrash(co)
	return true
}

// Sites returns the crash placements fired so far, in firing order.
func (g *Guided) Sites() []CrashSite {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]CrashSite, len(g.sites))
	copy(out, g.sites)
	return out
}

// Crashes reports how many crashes the injector has fired.
func (g *Guided) Crashes() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.crashes
}
