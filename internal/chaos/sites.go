package chaos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"nrl/internal/proc"
)

// CrashSite is one deterministic crash placement: process Proc crashes
// when its per-process step counter reaches Step. A (schedule seed, site
// list) pair replays an execution exactly under the controlled scheduler,
// which is what makes shrunk reproducers printable as flags.
type CrashSite struct {
	Proc int
	Step uint64
}

// String renders the site in the p<proc>@<step> flag syntax.
func (s CrashSite) String() string {
	return fmt.Sprintf("p%d@%d", s.Proc, s.Step)
}

// FormatSites renders sites as the comma-separated flag syntax parsed by
// ParseSites, e.g. "p1@12,p2@40".
func FormatSites(sites []CrashSite) string {
	parts := make([]string, len(sites))
	for i, s := range sites {
		parts[i] = s.String()
	}
	return strings.Join(parts, ",")
}

// ParseSites parses the "p1@12,p2@40" syntax.
func ParseSites(s string) ([]CrashSite, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []CrashSite
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		rest, ok := strings.CutPrefix(part, "p")
		if !ok {
			return nil, fmt.Errorf("chaos: site %q: want pN@STEP", part)
		}
		ps, ss, ok := strings.Cut(rest, "@")
		if !ok {
			return nil, fmt.Errorf("chaos: site %q: want pN@STEP", part)
		}
		p, err := strconv.Atoi(ps)
		if err != nil || p < 1 {
			return nil, fmt.Errorf("chaos: site %q: bad process %q", part, ps)
		}
		st, err := strconv.ParseUint(ss, 10, 64)
		if err != nil || st == 0 {
			return nil, fmt.Errorf("chaos: site %q: bad step %q", part, ss)
		}
		out = append(out, CrashSite{Proc: p, Step: st})
	}
	return out, nil
}

// SitesInjector replays an exact crash placement: each site crashes its
// process at its per-process step, once.
func SitesInjector(sites []CrashSite) proc.Injector {
	m := make(proc.Multi, len(sites))
	for i, s := range sites {
		m[i] = &proc.AtStep{Proc: s.Proc, Step: s.Step}
	}
	return m
}

// sortSites orders sites by process then step (the canonical printed
// order; firing order is determined by the schedule, not the list).
func sortSites(sites []CrashSite) {
	sort.Slice(sites, func(i, j int) bool {
		if sites[i].Proc != sites[j].Proc {
			return sites[i].Proc < sites[j].Proc
		}
		return sites[i].Step < sites[j].Step
	})
}
