package chaos

import (
	"strings"
	"testing"
)

func TestPhaseCoverage(t *testing.T) {
	pc := NewPhaseCoverage()
	for _, p := range []string{"mid-commit", "dirty", "dirty", "idle", "weird"} {
		pc.Record(p)
	}
	if got := pc.Distinct(); got != 4 {
		t.Fatalf("Distinct = %d, want 4", got)
	}
	if got := pc.Total(); got != 5 {
		t.Fatalf("Total = %d, want 5", got)
	}
	rows := pc.Rows()
	wantOrder := []string{"idle", "dirty", "mid-commit", "weird"}
	if len(rows) != len(wantOrder) {
		t.Fatalf("Rows = %v, want %v", rows, wantOrder)
	}
	for i, r := range rows {
		if r.Phase != wantOrder[i] {
			t.Fatalf("Rows[%d].Phase = %q, want %q (got %v)", i, r.Phase, wantOrder[i], rows)
		}
	}
	if rows[1].Kills != 2 {
		t.Fatalf("dirty kills = %d, want 2", rows[1].Kills)
	}
	s := pc.String()
	if !strings.Contains(s, "dirty") || !strings.Contains(s, "phase") {
		t.Fatalf("String missing content:\n%s", s)
	}
}
