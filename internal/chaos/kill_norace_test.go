//go:build !race

package chaos_test

import "time"

// Campaign tuning for uninstrumented binaries: the worker is inside the
// commit pipeline within a few milliseconds of exec, so a short kill
// window samples every phase, and phase diversity is asserted.
const (
	killAcceptanceRounds = 200
	killMaxDelay         = 30 * time.Millisecond
	killAssertPhases     = true
)
