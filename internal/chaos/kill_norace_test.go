//go:build !race

package chaos_test

import "time"

// Campaign tuning for uninstrumented binaries: the worker is inside the
// commit pipeline within a few milliseconds of exec, so a short kill
// window samples every phase, and phase diversity is asserted.
const (
	killAcceptanceRounds = 200
	killMaxDelay         = 30 * time.Millisecond
	killAssertPhases     = true
)

// Replica-campaign tuning: a replicated worker fsyncs three directories
// per commit, so the kill window stretches a little relative to the
// single-store campaign.
const (
	replAcceptanceRounds = 200
	replKillMaxDelay     = 60 * time.Millisecond
)
