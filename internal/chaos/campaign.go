package chaos

import (
	"errors"
	"fmt"

	schedtrace "nrl/internal/chaos/trace"
	"nrl/internal/harness"
	"nrl/internal/history"
	"nrl/internal/linearize"
	"nrl/internal/proc"
	"nrl/internal/trace"
)

// Campaign defaults.
const (
	// DefaultAwaitBudget is deliberately far below proc.DefaultAwaitBudget:
	// campaigns run thousands of schedules and want livelocked placements
	// diagnosed in milliseconds, not spun for millions of iterations.
	DefaultAwaitBudget = 10_000
	// DefaultCheckBudget bounds the WGL search per object per history.
	DefaultCheckBudget = 2_000_000
	// DefaultShrinkBudget bounds the replays spent minimising one failure.
	DefaultShrinkBudget = 200
)

// Config describes a campaign.
type Config struct {
	// Workload is the harness workload under attack.
	Workload harness.Workload
	// Procs and Ops shape each run (Procs is clamped by the workload).
	Procs int
	Ops   int
	// Runs is the number of seeded executions.
	Runs int
	// Seed is the master seed; run i derives its schedule and injector
	// streams via proc.SplitSeed(Seed, i).
	Seed int64
	// Rate/Boost tune the guided injector (<= 0 applies defaults).
	Rate  float64
	Boost float64
	// MaxCrashes bounds crashes per run (<= 0: 2×Procs+2).
	MaxCrashes int
	// Target restricts where crashes fire (ParseTarget grammar; "" = any).
	Target string
	// Shrink minimises the first failure to a minimal site list.
	Shrink bool
	// ShrinkBudget bounds the replays spent shrinking (<= 0 applies
	// DefaultShrinkBudget).
	ShrinkBudget int
	// AwaitBudget and CheckBudget override the campaign defaults (<= 0).
	AwaitBudget int
	CheckBudget int
}

// Failure is one NRL violation found by a campaign, with everything
// needed to replay it deterministically.
type Failure struct {
	// Run is the index of the failing run; RunSeed its derived seed (the
	// schedule is Controlled(RandomPicker(RunSeed))).
	Run     int
	RunSeed int64
	// Sites is the crash placement of the failing run, as fired.
	Sites []CrashSite
	// Shrunk is the minimised placement (equal to Sites when shrinking is
	// off or nothing could be dropped).
	Shrunk []CrashSite
	// ShrinkRuns is how many replays the shrinker spent.
	ShrinkRuns int
	// Err is the NRL checker's verdict.
	Err error
}

// Result summarises a campaign.
type Result struct {
	Runs    int
	Crashes int
	// Stuck counts runs that ended in a livelock watchdog report instead
	// of completing; FirstStuck retains the first such report.
	Stuck      int
	FirstStuck *proc.StuckReport
	// Partial counts runs whose NRL check exceeded its budget and fell
	// back to a windowed check of a history prefix.
	Partial int
	// Coverage is the campaign-wide crash-coordinate table.
	Coverage *Coverage
	// Failure is the first NRL violation (nil if the campaign is clean).
	Failure *Failure
	// Trace is the campaign's schedule trace: one round record per run
	// (derived seed, fired sites, verdict). chaos.Run is deterministic,
	// so re-running the same Config yields a byte-identical encoding —
	// ReplayTrace re-executes a recorded trace and diffs against it.
	Trace *schedtrace.Trace
}

// Run executes a campaign. A returned error means the campaign itself
// could not run (bad config, a non-watchdog panic in a workload);
// NRL violations are reported in Result.Failure, livelocks in
// Result.Stuck — neither aborts the remaining runs' error scan.
func Run(cfg Config) (*Result, error) {
	if cfg.Workload.Build == nil || cfg.Workload.Models == nil {
		return nil, fmt.Errorf("chaos: Config.Workload is required")
	}
	if cfg.Runs <= 0 {
		return nil, fmt.Errorf("chaos: Config.Runs must be positive")
	}
	procs := cfg.Workload.Procs(cfg.Procs)
	ops := cfg.Ops
	if ops <= 0 {
		ops = 2
	}
	maxCrashes := cfg.MaxCrashes
	if maxCrashes <= 0 {
		maxCrashes = 2*procs + 2
	}
	awaitBudget := cfg.AwaitBudget
	if awaitBudget <= 0 {
		awaitBudget = DefaultAwaitBudget
	}
	checkBudget := cfg.CheckBudget
	if checkBudget <= 0 {
		checkBudget = DefaultCheckBudget
	}
	target, err := ParseTarget(cfg.Target)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Coverage: NewCoverage(),
		Trace: &schedtrace.Trace{Header: schedtrace.Header{
			Kind:     schedtrace.KindCampaign,
			Workload: cfg.Workload.Name,
			Procs:    procs, Ops: ops, Runs: cfg.Runs, Seed: cfg.Seed,
			Rate: cfg.Rate, Boost: cfg.Boost, MaxCrashes: cfg.MaxCrashes,
			Target: cfg.Target,
		}},
	}
	for i := 0; i < cfg.Runs; i++ {
		runSeed := proc.SplitSeed(cfg.Seed, i)
		g := NewGuided(res.Coverage, proc.SplitSeed(runSeed, 1<<20), cfg.Rate, cfg.Boost, maxCrashes, target)
		h, failures := execute(cfg.Workload, procs, ops, runSeed, g, awaitBudget)
		res.Runs++
		res.Crashes += g.Crashes()
		stuck, err := classifyFailures(failures)
		if err != nil {
			return res, fmt.Errorf("chaos: run %d (seed %d): %w", i, runSeed, err)
		}
		if stuck != nil {
			res.Stuck++
			if res.FirstStuck == nil {
				res.FirstStuck = stuck
			}
		}
		verdict, partial := CheckWindowed(cfg.Workload.Models, h, checkBudget)
		if partial {
			res.Partial++
		}
		round := schedtrace.Round{
			Round: i, Seed: runSeed,
			Sites: FormatSites(g.Sites()), Crashes: g.Crashes(),
			Stuck: stuck != nil, Partial: partial,
		}
		if verdict != nil {
			round.Violation = verdict.Error()
		}
		res.Trace.Rounds = append(res.Trace.Rounds, round)
		if verdict != nil && res.Failure == nil {
			f := &Failure{
				Run: i, RunSeed: runSeed,
				Sites: g.Sites(), Shrunk: g.Sites(), Err: verdict,
			}
			if cfg.Shrink {
				budget := cfg.ShrinkBudget
				if budget <= 0 {
					budget = DefaultShrinkBudget
				}
				f.Shrunk, f.ShrinkRuns = shrink(cfg.Workload, procs, ops, runSeed, f.Sites, awaitBudget, checkBudget, budget)
			}
			res.Failure = f
		}
	}
	return res, nil
}

// execute performs one deterministic run: controlled scheduler seeded by
// seed, RecoverPanics on so watchdog reports surface as failures.
func execute(w harness.Workload, procs, ops int, seed int64, inj proc.Injector, awaitBudget int) (history.History, []error) {
	return executeTraced(w, procs, ops, seed, inj, awaitBudget, nil)
}

func executeTraced(w harness.Workload, procs, ops int, seed int64, inj proc.Injector, awaitBudget int, tr trace.Tracer) (history.History, []error) {
	rec := history.NewRecorder()
	sys := proc.NewSystem(proc.Config{
		Procs:         procs,
		Recorder:      rec,
		Injector:      inj,
		Scheduler:     proc.NewControlled(proc.RandomPicker(seed)),
		AwaitBudget:   awaitBudget,
		RecoverPanics: true,
		Tracer:        tr,
	})
	sys.Run(w.Build(sys, procs, ops))
	return rec.History(), sys.Failures()
}

// classifyFailures separates watchdog reports (expected, returned as the
// first StuckReport) from genuine panics (returned as an error).
func classifyFailures(failures []error) (*proc.StuckReport, error) {
	var first *proc.StuckReport
	for _, f := range failures {
		var se *proc.StuckError
		if !errors.As(f, &se) {
			return nil, f
		}
		if first == nil {
			first = &se.Report
		}
	}
	return first, nil
}

// CheckWindowed NRL-checks h under the node budget; when the budget is
// exceeded it degrades to checking successively shorter prefixes of h
// (any prefix of a recoverable-well-formed history is itself recoverable
// well-formed, so the partial verdict is sound). It returns the violation
// (nil if clean or undecided) and whether the verdict is partial. It is
// exported as the verdict path for the CLIs: a raw CheckNRL call in a
// command can hang on a wide history (nrlvet's checkconv rule flags it);
// CheckWindowed always terminates within the budget.
func CheckWindowed(models linearize.ModelFor, h history.History, budget int) (violation error, partial bool) {
	err := linearize.CheckNRLBudget(models, h, budget)
	if err == nil {
		return nil, false
	}
	if !errors.Is(err, linearize.ErrSearchBudget) {
		return err, false
	}
	for w := len(h.Steps) / 2; w > 0; w /= 2 {
		hw := history.History{Steps: h.Steps[:w]}
		err := linearize.CheckNRLBudget(models, hw, budget)
		if errors.Is(err, linearize.ErrSearchBudget) {
			continue
		}
		if err != nil {
			return fmt.Errorf("windowed (first %d of %d steps): %w", w, len(h.Steps), err), true
		}
		return nil, true
	}
	return nil, true
}

// Replay re-executes a (seed, sites) reproducer and returns its history
// plus the NRL verdict (nil = the placement no longer violates). A run
// that ends stuck reports the watchdog error instead.
func Replay(w harness.Workload, procs, ops int, seed int64, sites []CrashSite, awaitBudget int, checkBudget int) (history.History, error) {
	return ReplayTraced(w, procs, ops, seed, sites, awaitBudget, checkBudget, nil)
}

// ReplayTraced is Replay with a trace sink installed into the replayed
// system, so a shrunk reproducer can be exported as a full event stream
// (cmd/nrlchaos -trace).
func ReplayTraced(w harness.Workload, procs, ops int, seed int64, sites []CrashSite, awaitBudget, checkBudget int, tr trace.Tracer) (history.History, error) {
	if awaitBudget <= 0 {
		awaitBudget = DefaultAwaitBudget
	}
	if checkBudget <= 0 {
		checkBudget = DefaultCheckBudget
	}
	procs = w.Procs(procs)
	h, failures := executeTraced(w, procs, ops, seed, SitesInjector(sites), awaitBudget, tr)
	if stuck, err := classifyFailures(failures); err != nil {
		return h, err
	} else if stuck != nil {
		return h, &proc.StuckError{Report: *stuck}
	}
	violation, _ := CheckWindowed(w.Models, h, checkBudget)
	return h, violation
}

// shrink greedily minimises a failing crash placement: it repeatedly
// tries dropping each site and keeps any drop after which the replay
// still violates NRL, until a fixed point (1-minimal: no single site can
// be removed) or the replay budget runs out. Replays are deterministic,
// so the result is too.
func shrink(w harness.Workload, procs, ops int, seed int64, sites []CrashSite, awaitBudget, checkBudget, budget int) ([]CrashSite, int) {
	cur := make([]CrashSite, len(sites))
	copy(cur, sites)
	runs := 0
	for improved := true; improved && len(cur) > 1; {
		improved = false
		for i := 0; i < len(cur); i++ {
			if runs >= budget {
				return cur, runs
			}
			cand := make([]CrashSite, 0, len(cur)-1)
			cand = append(cand, cur[:i]...)
			cand = append(cand, cur[i+1:]...)
			runs++
			_, verdict := Replay(w, procs, ops, seed, cand, awaitBudget, checkBudget)
			var se *proc.StuckError
			if verdict == nil || errors.As(verdict, &se) {
				continue // removal loses the violation (or livelocks)
			}
			cur = cand
			improved = true
			i--
		}
	}
	return cur, runs
}
