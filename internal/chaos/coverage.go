// Package chaos is the adversarial fault-injection engine: coverage-guided
// crash campaigns over the harness workloads, with deterministic shrinking
// of failures to minimal reproducers and a livelock watchdog.
//
// Where package sweep places one crash at every reachable line under one
// fixed schedule, chaos runs MANY seeded schedules and biases its crashes
// toward coordinates (object, operation, line, nesting depth,
// crashes-so-far) that have never or rarely been crashed — steering the
// campaign into the adversarial corners the paper's machinery exists for:
// deep nesting, recovery re-entry, the Algorithm 3 waiting loops. Every
// history is NRL-checked (with a node budget degrading to a windowed
// partial verdict); livelocked runs end in a structured proc.StuckReport
// rather than a panic; failures shrink to a replayable (seed, crash-site)
// pair of flags.
package chaos

import (
	"fmt"
	"sort"
	"sync"

	"nrl/internal/proc"
)

// Coord is a coverage coordinate: the abstraction of a crash point the
// campaign tracks. ProcStep and the process id are deliberately dropped —
// they identify a moment of one schedule, not a code region — while Depth
// and the crashes-so-far bucket distinguish the adversarial contexts
// (nested frames, recovery re-entry) that plain line coverage conflates.
type Coord struct {
	Obj  string
	Op   string
	Line int
	// Depth is the frame nesting depth (1 = top-level operation).
	Depth int
	// Bucket classifies the process's crashes-so-far: 0, 1, or 2 (≥2).
	Bucket int
}

// maxBucket caps the crashes-so-far dimension so the coordinate space
// stays finite and coverable.
const maxBucket = 2

// CoordOf abstracts a crash point into its coverage coordinate.
func CoordOf(pt proc.CrashPoint) Coord {
	b := pt.Crashes
	if b > maxBucket {
		b = maxBucket
	}
	return Coord{Obj: pt.Obj, Op: pt.Op, Line: pt.Line, Depth: pt.Depth, Bucket: b}
}

// String renders the coordinate as obj.op@line d<depth> c<bucket>.
func (c Coord) String() string {
	return fmt.Sprintf("%s.%s@%d d%d c%d", c.Obj, c.Op, c.Line, c.Depth, c.Bucket)
}

// coordStats counts how often a coordinate was offered and crashed.
type coordStats struct {
	offered uint64
	crashes uint64
}

// Coverage aggregates crash-point coordinates across a whole campaign. It
// is shared by every run's injector (safe for concurrent use) and is what
// makes the campaign guided: the injector consults it to bias crashes
// toward uncovered coordinates.
type Coverage struct {
	mu   sync.Mutex
	seen map[Coord]*coordStats
}

// NewCoverage creates an empty coverage map.
func NewCoverage() *Coverage {
	return &Coverage{seen: make(map[Coord]*coordStats)}
}

// observe records that the coordinate was offered and returns its crash
// count so far (for the injector's bias decision).
func (cv *Coverage) observe(co Coord) uint64 {
	cv.mu.Lock()
	st := cv.seen[co]
	if st == nil {
		st = &coordStats{}
		cv.seen[co] = st
	}
	st.offered++
	n := st.crashes
	cv.mu.Unlock()
	return n
}

// recordCrash records that a crash fired at the coordinate.
func (cv *Coverage) recordCrash(co Coord) {
	cv.mu.Lock()
	cv.seen[co].crashes++
	cv.mu.Unlock()
}

// Row is one coordinate's campaign totals.
type Row struct {
	Coord   Coord
	Offered uint64
	Crashes uint64
}

// Rows returns the coverage table sorted by coordinate.
func (cv *Coverage) Rows() []Row {
	cv.mu.Lock()
	out := make([]Row, 0, len(cv.seen))
	for co, st := range cv.seen {
		out = append(out, Row{Coord: co, Offered: st.offered, Crashes: st.crashes})
	}
	cv.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Coord, out[j].Coord
		if a.Obj != b.Obj {
			return a.Obj < b.Obj
		}
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Depth != b.Depth {
			return a.Depth < b.Depth
		}
		return a.Bucket < b.Bucket
	})
	return out
}

// Stats returns the number of discovered coordinates and how many of them
// have been crashed at least once.
func (cv *Coverage) Stats() (discovered, crashed int) {
	cv.mu.Lock()
	defer cv.mu.Unlock()
	for _, st := range cv.seen {
		discovered++
		if st.crashes > 0 {
			crashed++
		}
	}
	return discovered, crashed
}

// Fraction is crashed/discovered (1.0 for an empty map).
func (cv *Coverage) Fraction() float64 {
	d, c := cv.Stats()
	if d == 0 {
		return 1
	}
	return float64(c) / float64(d)
}
