// schedtrace.go glues the campaign engines to the schedule-trace format
// of internal/chaos/trace: building traces from failures, re-executing
// recorded traces, and reporting the first divergence when the code's
// behavior has drifted since the recording.
package chaos

import (
	"fmt"
	"os/exec"
	"time"

	schedtrace "nrl/internal/chaos/trace"
	"nrl/internal/harness"
)

// ConfigFromTrace reconstructs the campaign Config a KindCampaign trace
// was recorded under. The header carries the full configuration, so the
// reconstruction is exact (the Worker-less simulated campaign needs
// nothing beyond it).
func ConfigFromTrace(rec *schedtrace.Trace) (Config, error) {
	if rec.Header.Kind != schedtrace.KindCampaign {
		return Config{}, fmt.Errorf("chaos: trace kind %q, want %q", rec.Header.Kind, schedtrace.KindCampaign)
	}
	w, ok := harness.WorkloadByName(rec.Header.Workload)
	if !ok {
		return Config{}, fmt.Errorf("chaos: trace names unknown workload %q", rec.Header.Workload)
	}
	return Config{
		Workload:   w,
		Procs:      rec.Header.Procs,
		Ops:        rec.Header.Ops,
		Runs:       rec.Header.Runs,
		Seed:       rec.Header.Seed,
		Rate:       rec.Header.Rate,
		Boost:      rec.Header.Boost,
		MaxCrashes: rec.Header.MaxCrashes,
		Target:     rec.Header.Target,
	}, nil
}

// RegressionTrace packages one campaign failure as a minimized
// single-round reproducer (KindRegression) — the format of the
// committed corpus under internal/chaos/testdata/regressions. The
// recorded placement is the shrunk one; note is free-form provenance.
func RegressionTrace(w harness.Workload, procs, ops int, f *Failure, note string) *schedtrace.Trace {
	procs = w.Procs(procs)
	return &schedtrace.Trace{
		Header: schedtrace.Header{
			Kind: schedtrace.KindRegression, Workload: w.Name,
			Procs: procs, Ops: ops, Seed: f.RunSeed, Note: note,
		},
		Rounds: []schedtrace.Round{{
			Round: 0, Seed: f.RunSeed,
			Sites: FormatSites(f.Shrunk), Crashes: len(f.Shrunk),
			Violation: f.Err.Error(),
		}},
	}
}

// ReplayTrace re-executes the simulated campaign a recorded trace
// describes and returns the fresh trace plus the first divergence (nil:
// the replay reproduced the recording exactly). Only the simulated
// kinds replay here; the SIGKILL kinds need a live worker harness
// (ReplayKillTrace, ReplayReplKillTrace).
func ReplayTrace(rec *schedtrace.Trace) (*schedtrace.Trace, *schedtrace.Divergence, error) {
	switch rec.Header.Kind {
	case schedtrace.KindCampaign:
		cfg, err := ConfigFromTrace(rec)
		if err != nil {
			return nil, nil, err
		}
		res, err := Run(cfg)
		if err != nil {
			return nil, nil, err
		}
		return res.Trace, schedtrace.Diff(rec, res.Trace), nil
	case schedtrace.KindRegression:
		return replayRegression(rec)
	default:
		return nil, nil, fmt.Errorf("chaos: trace kind %q needs a live worker harness to replay", rec.Header.Kind)
	}
}

// replayRegression re-runs a minimized (seed, sites) reproducer and
// diffs its verdict against the recorded one.
func replayRegression(rec *schedtrace.Trace) (*schedtrace.Trace, *schedtrace.Divergence, error) {
	if len(rec.Rounds) != 1 {
		return nil, nil, fmt.Errorf("chaos: regression trace has %d rounds, want 1", len(rec.Rounds))
	}
	w, ok := harness.WorkloadByName(rec.Header.Workload)
	if !ok {
		return nil, nil, fmt.Errorf("chaos: trace names unknown workload %q", rec.Header.Workload)
	}
	r := rec.Rounds[0]
	sites, err := ParseSites(r.Sites)
	if err != nil {
		return nil, nil, fmt.Errorf("chaos: regression trace sites: %w", err)
	}
	procs := w.Procs(rec.Header.Procs)
	_, verdict := Replay(w, procs, rec.Header.Ops, r.Seed, sites, 0, 0)
	got := &schedtrace.Trace{
		Header: schedtrace.Header{
			Kind: schedtrace.KindRegression, Workload: w.Name,
			Procs: procs, Ops: rec.Header.Ops, Seed: rec.Header.Seed,
		},
		Rounds: []schedtrace.Round{{
			Round: 0, Seed: r.Seed,
			Sites: FormatSites(sites), Crashes: len(sites),
		}},
	}
	if verdict != nil {
		got.Rounds[0].Violation = verdict.Error()
	}
	return got, schedtrace.Diff(rec, got), nil
}

// ReplayKillTrace re-runs the SIGKILL campaign a KindKill trace records,
// against the supplied worker builder, and diffs the fresh schedule
// against the recorded one (observed outcomes do not gate; see the
// trace package doc).
func ReplayKillTrace(rec *schedtrace.Trace, worker func(verify bool) *exec.Cmd) (*KillResult, *schedtrace.Divergence, error) {
	if rec.Header.Kind != schedtrace.KindKill {
		return nil, nil, fmt.Errorf("chaos: trace kind %q, want %q", rec.Header.Kind, schedtrace.KindKill)
	}
	res, err := RunKillCampaign(KillConfig{
		Rounds:       rec.Header.Rounds,
		Seed:         rec.Header.Seed,
		MaxKillDelay: time.Duration(rec.Header.MaxDelayUS) * time.Microsecond,
		Worker:       worker,
	})
	if err != nil {
		return res, nil, err
	}
	return res, schedtrace.Diff(rec, res.Trace), nil
}

// ReplayReplKillTrace re-runs the replica-fault campaign a KindReplKill
// trace records, against a fresh root, and diffs the fresh schedule
// against the recorded one.
func ReplayReplKillTrace(rec *schedtrace.Trace, root string, worker func(verify bool, faultDir, faultAfter, faultFor int, seed int64) *exec.Cmd) (*ReplKillResult, *schedtrace.Divergence, error) {
	if rec.Header.Kind != schedtrace.KindReplKill {
		return nil, nil, fmt.Errorf("chaos: trace kind %q, want %q", rec.Header.Kind, schedtrace.KindReplKill)
	}
	res, err := RunReplKillCampaign(ReplKillConfig{
		Rounds:       rec.Header.Rounds,
		Seed:         rec.Header.Seed,
		MaxKillDelay: time.Duration(rec.Header.MaxDelayUS) * time.Microsecond,
		Root:         root,
		Replicas:     rec.Header.Replicas,
		Appends:      rec.Header.Appends,
		Worker:       worker,
	})
	if err != nil {
		return res, nil, err
	}
	return res, schedtrace.Diff(rec, res.Trace), nil
}
