// replkill.go is the replica-fault crash harness: the kill harness of
// kill.go lifted onto the replicated backend. Each round runs a worker
// process whose durable counter/log workload sits on a replica.Set over
// N store directories, SIGKILLs it at a random point, AND injures one
// replica directory — wiping it, corrupting its files, or injecting
// disk faults into its I/O — before or during the round. The campaign
// checks that every incarnation recovers to an NRL-consistent state
// containing every acknowledged append, and that a leader whose disk
// dies is replaced by a promoted follower instead of leaving the set
// sticky read-only: with one fault per round and three replicas, a
// healthy majority always exists, so a degraded exit is a violation.
package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	schedtrace "nrl/internal/chaos/trace"
	"nrl/internal/durable"
	"nrl/internal/nvm"
	"nrl/internal/persist"
	"nrl/internal/proc"
	"nrl/internal/replica"
	"nrl/internal/vclock"
)

// ReplicaFault names the per-round replica-directory injury.
type ReplicaFault int

// The three fault kinds of the replica campaign, applied to one
// directory per round.
const (
	// FaultWipe deletes the directory outright before the round — total
	// loss of one replica, healed back in by snapshot transfer.
	FaultWipe ReplicaFault = iota
	// FaultCorrupt flips random bytes in the directory's files before
	// the round — recovery must trim or out-elect the damage.
	FaultCorrupt
	// FaultDisk makes every physical I/O against the directory fail
	// from a chosen point of the round on — the degradation that must
	// end in promotion, not read-only.
	FaultDisk
)

// String names the fault for coverage tables.
func (f ReplicaFault) String() string {
	switch f {
	case FaultWipe:
		return "wipe"
	case FaultCorrupt:
		return "corrupt"
	case FaultDisk:
		return "disk"
	default:
		return fmt.Sprintf("ReplicaFault(%d)", int(f))
	}
}

// ReplKillWorkerConfig configures one replica-worker incarnation.
type ReplKillWorkerConfig struct {
	// Root holds the replica directories Root/r0 .. Root/r{Replicas-1}.
	Root string
	// Replicas is the replica-set size (identical every incarnation).
	Replicas int
	// Appends is how many log appends to perform after recovery.
	Appends int
	// Capacity is the log capacity in records (identical every
	// incarnation; the backend identifies words by allocation order).
	Capacity int
	// FaultDir, when >= 0, selects the replica directory whose I/O is
	// dead this incarnation; FaultAfter is the append count after which
	// the fault arms (0 = dead from process start, Open included).
	// FaultFor, when > 0, disarms the fault again FaultFor appends
	// later — a transient outage the set must heal from; 0 leaves the
	// directory dead for the whole incarnation.
	FaultDir   int
	FaultAfter int
	FaultFor   int
	// Seed seeds the incarnation's replica-set jitter streams (ship
	// retry and heal backoff). The campaign derives one per round from
	// its master seed, so every incarnation's backoff schedule is a
	// recorded, replayable choice instead of an ad-hoc constant.
	Seed int64
	// Verify makes the incarnation recover, verify and exit without
	// appending (the campaign's final no-kill check, never faulted).
	Verify bool
}

// ReplicaDirs returns the member directories of a replica-set root, in
// index order: root/r0 .. root/r{n-1}.
func ReplicaDirs(root string, n int) []string {
	ds := make([]string, n)
	for i := range ds {
		ds[i] = filepath.Join(root, fmt.Sprintf("r%d", i))
	}
	return ds
}

// RunReplKillWorker runs one incarnation of the replica kill-harness
// workload, writing the kill.go line protocol to out, extended with one
// set-status line after recovery and another before exit:
//
//	set leader=<idx> epoch=<e> promos=<n> heals=<n>
//
// leader is the serving directory's index in the set (-1 if it is not a
// member path, which would itself be a bug). The campaign reads the
// last set line of each round: promos > 0 is the proof that a faulted
// leader ended in promotion rather than read-only.
//
// The returned code is one of the KillWorker constants.
func RunReplKillWorker(cfg ReplKillWorkerConfig, out io.Writer) int {
	hook := func(p nvm.Phase) { fmt.Fprintf(out, "phase %s\n", p) }
	dirs := ReplicaDirs(cfg.Root, cfg.Replicas)
	var armed atomic.Bool
	if cfg.FaultDir >= 0 && cfg.FaultAfter <= 0 {
		armed.Store(true)
	}
	opts := replica.Options{
		Dirs: dirs,
		Persist: persist.Options{
			PhaseHook: hook,
			// Small segments so rotation and checkpointing run inside
			// every incarnation, putting segment boundaries under the
			// kills.
			SegmentBytes:    4 << 10,
			CheckpointBytes: 32 << 10,
			// A dead directory must be detected and failed over well
			// inside the campaign's kill window, so the retry budget is
			// short and its backoff tight. The default, patient budget
			// is exercised by the persist package's own tests.
			Retries:   2,
			BaseDelay: 200 * time.Microsecond,
			MaxDelay:  2 * time.Millisecond,
		},
		ShipBaseDelay: 200 * time.Microsecond,
		ShipMaxDelay:  2 * time.Millisecond,
		Seed:          cfg.Seed,
	}
	if cfg.FaultDir >= 0 {
		opts.InjectFor = func(i int) func(op string) error {
			if i != cfg.FaultDir {
				return nil
			}
			return func(op string) error {
				if armed.Load() {
					return errors.New("injected replica disk fault")
				}
				return nil
			}
		}
	}
	s, err := replica.Open(opts)
	if err != nil {
		if errors.Is(err, persist.ErrCorrupt) {
			fmt.Fprintf(out, "corrupt %v\n", err)
			return KillWorkerCorrupt
		}
		fmt.Fprintf(out, "bad open: %v\n", err)
		return KillWorkerBad
	}
	defer s.Close()

	leaderIdx := func() int {
		ld := s.LeaderDir()
		for i, d := range dirs {
			if d == ld {
				return i
			}
		}
		return -1
	}
	setLine := func() {
		st := s.Status()
		fmt.Fprintf(out, "set leader=%d epoch=%d promos=%d heals=%d\n",
			leaderIdx(), st.Epoch, st.Promotions, st.Heals)
	}

	mem := nvm.New(nvm.WithMode(nvm.Buffered), nvm.WithBackend(s), nvm.WithPhaseHook(hook))
	log := durable.NewLog(mem, "log", cfg.Capacity)
	ctr := durable.NewCounter(mem, "ctr", 1)

	// Recovery check: the durable state must be NRL-consistent — the
	// log is exactly the contiguous acknowledged prefix 1..L, and the
	// counter (incremented after each append) is never ahead of it.
	n := log.Len()
	sum := ctr.Read()
	for i := uint64(0); i < n; i++ {
		if got := log.Get(i); got != i+1 {
			fmt.Fprintf(out, "bad log[%d]=%d want %d (len %d)\n", i, got, i+1, n)
			return KillWorkerBad
		}
	}
	if sum > n {
		fmt.Fprintf(out, "bad counter %d ahead of log %d\n", sum, n)
		return KillWorkerBad
	}
	fmt.Fprintf(out, "recovered len=%d ctr=%d torn=0 repaired=0\n", n, sum)
	setLine()
	if cfg.Verify {
		fmt.Fprintln(out, "done")
		return KillWorkerOK
	}

	// Reconciliation: complete the in-flight increment a kill between
	// append and inc left behind.
	for ctr.Read() < log.Len() {
		ctr.Inc(1)
		if err := mem.Err(); err != nil {
			fmt.Fprintf(out, "degraded %v\n", err)
			return KillWorkerDegraded
		}
	}

	for i := 0; i < cfg.Appends; i++ {
		if cfg.FaultDir >= 0 && i >= cfg.FaultAfter {
			if cfg.FaultFor > 0 && i >= cfg.FaultAfter+cfg.FaultFor {
				armed.Store(false)
			} else {
				armed.Store(true)
			}
		}
		v := log.Len() + 1
		if _, err := log.TryAppend(v); err != nil {
			if errors.Is(err, nvm.ErrDegraded) {
				fmt.Fprintf(out, "degraded %v\n", err)
				return KillWorkerDegraded
			}
			fmt.Fprintf(out, "bad append: %v\n", err)
			return KillWorkerBad
		}
		ctr.Inc(1)
		if err := mem.Err(); err != nil {
			fmt.Fprintf(out, "degraded %v\n", err)
			return KillWorkerDegraded
		}
		fmt.Fprintf(out, "len %d\n", v)
		// Per-append set line: a killed incarnation still reports the
		// promotions and heals it lived through.
		setLine()
	}
	fmt.Fprintln(out, "done")
	return KillWorkerOK
}

// ReplKillConfig configures a replica-fault kill campaign.
type ReplKillConfig struct {
	// Rounds is how many worker incarnations to run (kills included).
	Rounds int
	// Seed drives the kill-delay, fault-kind and fault-target schedules.
	Seed int64
	// MaxKillDelay bounds the random delay before the SIGKILL (default
	// 60ms). A worker finishing earlier exits cleanly.
	MaxKillDelay time.Duration
	// Root is the replica-set root directory; Replicas the member count
	// (default 3).
	Root     string
	Replicas int
	// Appends is the per-incarnation append budget the Worker is built
	// with; the campaign uses it to place disk-fault arming points.
	Appends int
	// Worker builds the command for one incarnation: a process that
	// runs RunReplKillWorker against Root, with the round's disk fault
	// (faultDir < 0 for none, faultFor > 0 for a transient window), the
	// round's derived jitter seed, and Verify for the final check. Its
	// stdout must be the worker's line protocol.
	Worker func(verify bool, faultDir, faultAfter, faultFor int, seed int64) *exec.Cmd
}

// ReplKillRound records one incarnation of the replica campaign.
type ReplKillRound struct {
	Round    int
	Killed   bool
	Phase    string // last phase entered before the kill ("" if none)
	ExitCode int
	// Fault is the round's replica injury; FaultDir its target.
	Fault    ReplicaFault
	FaultDir int
	// RecoveredLen/RecoveredCtr are what the incarnation reported after
	// recovery; AckedLen the last append it acknowledged.
	RecoveredLen uint64
	RecoveredCtr uint64
	AckedLen     uint64
	// Leader/Epoch/Promos/Heals are the last set-status values the
	// incarnation reported.
	Leader int
	Epoch  uint64
	Promos uint64
	Heals  uint64
}

// ReplKillResult is a replica campaign's outcome. Failures is empty iff
// every incarnation recovered to an NRL-consistent state and no round
// ended sticky read-only.
type ReplKillResult struct {
	Rounds     []ReplKillRound
	Kills      int
	CleanExits int
	// Promotions and Heals total the leader failovers and follower
	// re-attachments the incarnations reported.
	Promotions uint64
	Heals      uint64
	// Faults counts rounds per fault kind; LeaderFaults how many rounds
	// faulted the directory that was serving as leader at round start.
	Faults       map[string]int
	LeaderFaults int
	// Phases records which persistence phase each kill landed in.
	Phases *PhaseCoverage
	// FinalLen is the log length of the final verify pass; FinalEpoch
	// its epoch.
	FinalLen   uint64
	FinalEpoch uint64
	// Failures describes every violation; Transcripts holds the failing
	// rounds' worker output for artifacts.
	Failures    []string
	Transcripts []string
	// Trace is the campaign's schedule trace (KindReplKill): the seeded
	// fault/delay/jitter choices gate replay; the observed outcomes ride
	// along for forensics.
	Trace *schedtrace.Trace
}

// replWorkerState extends the kill.go line parser with the set-status
// line.
type replWorkerState struct {
	workerState
	setSeen bool
	leader  int
	epoch   uint64
	promos  uint64
	heals   uint64
}

func (s *replWorkerState) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buf.Write(p)
	for {
		line, err := s.buf.ReadString('\n')
		if err != nil {
			s.buf.WriteString(line)
			break
		}
		l := strings.TrimSuffix(line, "\n")
		if strings.HasPrefix(l, "set ") {
			s.lines = append(s.lines, l)
			s.setSeen = true
			fmt.Sscanf(l, "set leader=%d epoch=%d promos=%d heals=%d",
				&s.leader, &s.epoch, &s.promos, &s.heals)
			continue
		}
		s.line(l)
	}
	return len(p), nil
}

// corruptReplicaDir flips a burst of random bytes in every file of one
// replica directory (seeded). Missing or empty directories are a no-op.
func corruptReplicaDir(dir string, rng *vclock.Rand) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		path := filepath.Join(dir, e.Name())
		b, err := os.ReadFile(path)
		if err != nil || len(b) == 0 {
			continue
		}
		// A handful of single-bit and whole-byte flips per file, so
		// damage lands in headers, records and checksums alike.
		flips := 1 + rng.Intn(8)
		for i := 0; i < flips; i++ {
			off := rng.Intn(len(b))
			if rng.Intn(2) == 0 {
				b[off] ^= 1 << uint(rng.Intn(8))
			} else {
				b[off] ^= 0xff
			}
		}
		if err := os.WriteFile(path, b, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// RunReplKillCampaign runs the seeded replica-fault SIGKILL campaign:
// Rounds worker incarnations over one replica-set root, each killed
// after a random delay (or exiting cleanly first), each with exactly
// one replica-directory fault — wipe, corrupt, or disk — targeting a
// random member. A final verify incarnation runs unfaulted and
// unkilled. It returns an error only for harness-level problems;
// violations land in ReplKillResult.Failures.
func RunReplKillCampaign(cfg ReplKillConfig) (*ReplKillResult, error) {
	if cfg.Worker == nil {
		return nil, errors.New("harness: ReplKillConfig.Worker is required")
	}
	if cfg.MaxKillDelay <= 0 {
		cfg.MaxKillDelay = 60 * time.Millisecond
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 3
	}
	if cfg.Appends <= 0 {
		cfg.Appends = 20
	}
	// Stream 0 of the campaign seed drives the schedule choices of the
	// campaign loop (fault kind, target, arming window, kill delay) —
	// and nothing else: the per-round draw count must be a constant so
	// the schedule is a pure function of the seed. Corruption byte
	// flips consume a state-dependent number of draws (they walk
	// whatever files the previous incarnation left), so each corrupting
	// round gets its own derived stream; each round's worker likewise
	// gets a split seed for the replica-set jitter inside the
	// incarnation. The virtual clock accumulates the scheduled delays
	// for the trace's vtime.
	rng := vclock.NewRand(cfg.Seed, 0)
	clk := vclock.NewClock()
	res := &ReplKillResult{
		Phases: NewPhaseCoverage(),
		Faults: map[string]int{},
		Trace: &schedtrace.Trace{Header: schedtrace.Header{
			Kind: schedtrace.KindReplKill, Seed: cfg.Seed,
			Rounds: cfg.Rounds, Appends: cfg.Appends,
			Replicas:   cfg.Replicas,
			MaxDelayUS: cfg.MaxKillDelay.Microseconds(),
		}},
	}
	dirs := ReplicaDirs(cfg.Root, cfg.Replicas)
	var acked uint64 // high-water mark of acknowledged appends
	leaderAt := 0    // serving directory index as of the last report

	fail := func(round int, st *replWorkerState, format string, args ...any) {
		res.Failures = append(res.Failures, fmt.Sprintf("round %d: %s", round, fmt.Sprintf(format, args...)))
		res.Transcripts = append(res.Transcripts,
			fmt.Sprintf("round %d:\n  %s", round, strings.Join(st.lines, "\n  ")))
	}

	for round := 0; round < cfg.Rounds && len(res.Failures) == 0; round++ {
		// One replica injury per round. At-rest faults (wipe, corrupt)
		// land before the worker starts; the disk fault rides the worker
		// via its failpoint hook, arming partway through the append loop
		// so it can hit a serving leader mid-commit.
		fault := ReplicaFault(rng.Intn(3))
		faultDir := rng.Intn(cfg.Replicas)
		faultAfter, faultFor := 0, 0
		if fault == FaultDisk {
			faultAfter = rng.Intn(cfg.Appends/2 + 1)
			// Half the disk outages are transient — the directory comes
			// back a few appends later and the set must heal it in.
			if rng.Intn(2) == 0 {
				faultFor = 1 + rng.Intn(3)
			}
		}
		res.Faults[fault.String()]++
		if faultDir == leaderAt {
			res.LeaderFaults++
		}
		switch fault {
		case FaultWipe:
			if err := os.RemoveAll(dirs[faultDir]); err != nil {
				return res, fmt.Errorf("harness: wipe %s: %w", dirs[faultDir], err)
			}
		case FaultCorrupt:
			if err := corruptReplicaDir(dirs[faultDir], vclock.NewRand(cfg.Seed, 1<<20|round)); err != nil {
				return res, fmt.Errorf("harness: corrupt %s: %w", dirs[faultDir], err)
			}
		}

		st := &replWorkerState{}
		var stderr bytes.Buffer
		diskDir := -1
		if fault == FaultDisk {
			diskDir = faultDir
		}
		workerSeed := proc.SplitSeed(cfg.Seed, round+1)
		cmd := cfg.Worker(false, diskDir, faultAfter, faultFor, workerSeed)
		cmd.Stdout = st
		cmd.Stderr = &stderr
		if err := cmd.Start(); err != nil {
			return res, fmt.Errorf("harness: start worker: %w", err)
		}
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()

		delay := rng.Duration(cfg.MaxKillDelay) + time.Millisecond
		clk.Advance(delay)
		killed := false
		var waitErr error
		select {
		case waitErr = <-done:
		case <-time.After(delay): //nrl:ignore real SIGKILL harness: the wait must elapse on the wall clock to race a live process; the delay itself is drawn from the seeded stream above
			killed = true
			_ = cmd.Process.Kill()
			waitErr = <-done
		}

		st.mu.Lock()
		kr := ReplKillRound{
			Round: round, Killed: killed, Phase: st.lastPhase,
			Fault: fault, FaultDir: faultDir,
			RecoveredLen: st.recoveredLen, RecoveredCtr: st.recoveredCtr,
			AckedLen: st.ackedLen,
			Leader:   st.leader, Epoch: st.epoch, Promos: st.promos, Heals: st.heals,
		}
		recoveredSeen, doneSeen, failMsg := st.recoveredSeen, st.done, st.failMsg
		setSeen := st.setSeen
		st.mu.Unlock()
		if waitErr != nil {
			var ee *exec.ExitError
			if errors.As(waitErr, &ee) {
				kr.ExitCode = ee.ExitCode()
			} else {
				return res, fmt.Errorf("harness: wait worker: %w", waitErr)
			}
		}
		res.Rounds = append(res.Rounds, kr)
		tr := schedtrace.Round{
			Round: round, Seed: workerSeed,
			Fault: fault.String(), FaultDir: faultDir,
			FaultAfter: faultAfter, FaultFor: faultFor,
			DelayUS: delay.Microseconds(),
			VTimeUS: clk.Elapsed().Microseconds(),
			Killed:  killed, Phase: kr.Phase, Exit: kr.ExitCode,
			Recovered: kr.RecoveredLen, Acked: kr.AckedLen,
		}
		res.Trace.Rounds = append(res.Trace.Rounds, tr)

		if killed {
			res.Kills++
			phase := kr.Phase
			if phase == "" {
				phase = "idle"
			}
			res.Phases.Record(phase)
		} else {
			res.CleanExits++
			// With one fault per round and a replica majority intact, a
			// clean exit must be a success — KillWorkerDegraded here
			// means the set went sticky read-only while healthy replicas
			// existed, the exact outcome promotion exists to prevent.
			if kr.ExitCode != KillWorkerOK || !doneSeen {
				fail(round, st, "worker failed (exit %d, fault %s@r%d): %s%s",
					kr.ExitCode, fault, faultDir, failMsg, strings.TrimRight("\n"+stderr.String(), "\n"))
				continue
			}
		}
		if recoveredSeen {
			if kr.RecoveredLen < acked {
				fail(round, st, "acknowledged append lost: recovered len %d < acked %d (fault %s@r%d)",
					kr.RecoveredLen, acked, fault, faultDir)
				continue
			}
			if kr.RecoveredCtr > kr.RecoveredLen {
				fail(round, st, "counter %d ahead of log %d", kr.RecoveredCtr, kr.RecoveredLen)
				continue
			}
			if kr.RecoveredLen > acked {
				acked = kr.RecoveredLen
			}
		} else if !killed {
			fail(round, st, "clean exit without recovery report")
			continue
		}
		if setSeen {
			res.Promotions += kr.Promos
			res.Heals += kr.Heals
			leaderAt = kr.Leader
		}
		if kr.AckedLen > acked {
			acked = kr.AckedLen
		}
	}

	// Final verify incarnation: no kill, no fault. Whatever the campaign
	// left on disk must recover to the acknowledged history.
	if len(res.Failures) == 0 {
		st := &replWorkerState{}
		var stderr bytes.Buffer
		cmd := cfg.Worker(true, -1, 0, 0, proc.SplitSeed(cfg.Seed, 0))
		cmd.Stdout = st
		cmd.Stderr = &stderr
		err := cmd.Run()
		st.mu.Lock()
		res.FinalLen = st.recoveredLen
		res.FinalEpoch = st.epoch
		finalSeen, failMsg := st.recoveredSeen, st.failMsg
		finalLen := st.recoveredLen
		st.mu.Unlock()
		switch {
		case err != nil:
			fail(cfg.Rounds, st, "final verify failed: %v: %s%s", err, failMsg, strings.TrimRight("\n"+stderr.String(), "\n"))
		case !finalSeen:
			fail(cfg.Rounds, st, "final verify printed no recovery report")
		case finalLen < acked:
			fail(cfg.Rounds, st, "final state lost acknowledged appends: len %d < acked %d", finalLen, acked)
		}
	}
	return res, nil
}
