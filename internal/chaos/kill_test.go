package chaos_test

import (
	"os"
	"os/exec"
	"strconv"
	"testing"

	"nrl/internal/chaos"
)

// TestKillWorkerProcess is not a test: it is the kill-harness worker
// body, re-executed as a subprocess by the campaign tests below. It
// does nothing unless the NRL_KILL_WORKER environment guard is set.
func TestKillWorkerProcess(t *testing.T) {
	if os.Getenv("NRL_KILL_WORKER") == "" {
		t.Skip("not a worker invocation")
	}
	atoi := func(k string, def int) int {
		if v := os.Getenv(k); v != "" {
			n, err := strconv.Atoi(v)
			if err == nil {
				return n
			}
		}
		return def
	}
	cfg := chaos.KillWorkerConfig{
		Dir:      os.Getenv("NRL_KILL_DIR"),
		Appends:  atoi("NRL_KILL_APPENDS", 3),
		Capacity: atoi("NRL_KILL_CAPACITY", 4096),
		Verify:   os.Getenv("NRL_KILL_VERIFY") != "",
	}
	os.Exit(chaos.RunKillWorker(cfg, os.Stdout))
}

// selfWorker builds a Worker function that re-executes this test binary
// as the kill worker.
func selfWorker(t *testing.T, dir string, appends, capacity int) func(bool) *exec.Cmd {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	return func(verify bool) *exec.Cmd {
		cmd := exec.Command(exe, "-test.run=TestKillWorkerProcess")
		cmd.Env = append(os.Environ(),
			"NRL_KILL_WORKER=1",
			"NRL_KILL_DIR="+dir,
			"NRL_KILL_APPENDS="+strconv.Itoa(appends),
			"NRL_KILL_CAPACITY="+strconv.Itoa(capacity),
		)
		if verify {
			cmd.Env = append(cmd.Env, "NRL_KILL_VERIFY=1")
		}
		return cmd
	}
}

func runCampaign(t *testing.T, rounds, appends int, seed int64) *chaos.KillResult {
	t.Helper()
	dir := t.TempDir()
	res, err := chaos.RunKillCampaign(chaos.KillConfig{
		Rounds:       rounds,
		Seed:         seed,
		MaxKillDelay: killMaxDelay,
		Worker:       selfWorker(t, dir, appends, 16384),
	})
	if err != nil {
		t.Fatalf("RunKillCampaign: %v", err)
	}
	for _, f := range res.Failures {
		t.Errorf("consistency failure: %s", f)
	}
	if t.Failed() {
		for _, tr := range res.Transcripts {
			t.Logf("transcript:\n%s", tr)
		}
	}
	return res
}

// TestKillCampaignSmoke is the always-on quick version of the issue's
// 200-round acceptance run.
func TestKillCampaignSmoke(t *testing.T) {
	res := runCampaign(t, 12, 8, 7)
	if res.Kills+res.CleanExits != 12 {
		t.Fatalf("rounds accounted = %d+%d, want 12", res.Kills, res.CleanExits)
	}
	if res.BlackBoxChecks == 0 {
		t.Error("no round cross-checked the flight-recorder black box")
	}
	t.Logf("smoke: kills=%d clean=%d finalLen=%d repaired=%d bbchecks=%d\n%s",
		res.Kills, res.CleanExits, res.FinalLen, res.RepairedWrites, res.BlackBoxChecks, res.Phases)
}

// TestKillCampaign200Rounds is the acceptance criterion: 200 seeded
// SIGKILL rounds over one store, every incarnation recovering to an
// NRL-consistent state, with kills landing across multiple persistence
// phases.
func TestKillCampaign200Rounds(t *testing.T) {
	if testing.Short() {
		t.Skip("200-round kill campaign skipped in -short mode")
	}
	// 40 appends (~80 fences) keeps each incarnation inside the commit
	// pipeline long enough that most kill delays land mid-workload.
	res := runCampaign(t, killAcceptanceRounds, 40, 1)
	if res.Kills == 0 {
		t.Fatalf("%d rounds produced no kills; campaign exercised nothing", killAcceptanceRounds)
	}
	if d := res.Phases.Distinct(); killAssertPhases && d < 2 {
		t.Errorf("kills covered only %d distinct phase(s); want >= 2\n%s", d, res.Phases)
	}
	t.Logf("%d rounds: kills=%d clean=%d finalLen=%d torn=%d repaired=%d\n%s",
		killAcceptanceRounds, res.Kills, res.CleanExits, res.FinalLen, res.TornWrites, res.RepairedWrites, res.Phases)
}
