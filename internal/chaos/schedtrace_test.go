package chaos

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	schedtrace "nrl/internal/chaos/trace"
)

// brokenConfig is the seeded campaign every schedule-trace test records:
// the broken strawman, so the trace carries violation rounds too.
func brokenConfig(t *testing.T) Config {
	return Config{
		Workload: workload(t, "broken"),
		Procs:    1, Ops: 2,
		Runs: 30, Seed: 42,
		Shrink: true,
	}
}

// TestCampaignTraceDoubleRun is the determinism acceptance test: the
// same seeded campaign run twice must produce byte-identical encoded
// schedule traces — same derived seeds, same fired sites, same verdicts,
// round by round.
func TestCampaignTraceDoubleRun(t *testing.T) {
	var encs [2][]byte
	for i := range encs {
		res, err := Run(brokenConfig(t))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Trace.Rounds) != 30 {
			t.Fatalf("trace has %d rounds, want 30", len(res.Trace.Rounds))
		}
		enc, err := res.Trace.Encode()
		if err != nil {
			t.Fatal(err)
		}
		encs[i] = enc
	}
	if !bytes.Equal(encs[0], encs[1]) {
		t.Error("two runs of the same seeded campaign encoded different traces")
	}
}

// TestReplayTraceMatches records a campaign, round-trips the trace
// through its JSONL encoding, replays it, and requires zero divergence.
func TestReplayTraceMatches(t *testing.T) {
	res, err := Run(brokenConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	enc, err := res.Trace.Encode()
	if err != nil {
		t.Fatal(err)
	}
	rec, err := schedtrace.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	_, div, err := ReplayTrace(rec)
	if err != nil {
		t.Fatal(err)
	}
	if div != nil {
		t.Fatalf("replay of a fresh recording diverged: %v", div)
	}
}

// TestReplayTraceNamesFirstDivergence injects a deliberate behavioral
// change into a recording (as if the code under replay had drifted) and
// requires the diff to name the first divergent round and field.
func TestReplayTraceNamesFirstDivergence(t *testing.T) {
	res, err := Run(brokenConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	rec := res.Trace

	// Tamper with two rounds; the diff must report the earlier one.
	rec.Rounds[7].Crashes++
	rec.Rounds[12].Seed++
	_, div, err := ReplayTrace(rec)
	if err != nil {
		t.Fatal(err)
	}
	if div == nil {
		t.Fatal("tampered recording replayed clean")
	}
	if div.Round != 7 || div.Field != "crashes" {
		t.Fatalf("divergence = round %d field %q, want round 7 field \"crashes\"", div.Round, div.Field)
	}
	if !strings.Contains(div.Error(), "round 7") {
		t.Errorf("divergence error %q does not name the round", div.Error())
	}
}

// TestRegressionTraceRoundTrip minimizes a campaign failure into a
// regression trace, writes and re-reads it, and replays it clean.
func TestRegressionTraceRoundTrip(t *testing.T) {
	res, err := Run(brokenConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Failure == nil {
		t.Fatal("campaign found no violation in the broken counter")
	}
	tr := RegressionTrace(workload(t, "broken"), 1, 2, res.Failure, "test round-trip")
	path := filepath.Join(t.TempDir(), "broken.trace.jsonl")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	rec, err := schedtrace.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	_, div, err := ReplayTrace(rec)
	if err != nil {
		t.Fatal(err)
	}
	if div != nil {
		t.Fatalf("fresh regression trace diverged on replay: %v", div)
	}
}

// TestRegressionCorpus replays every committed trace under
// testdata/regressions as an ordinary test case: a chaos-found,
// minimized crash stays reproducible forever. Regenerate a trace whose
// violation wording legitimately changed with:
//
//	NRL_UPDATE_CORPUS=1 go test ./internal/chaos -run TestRegressionCorpus
func TestRegressionCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "regressions")
	if os.Getenv("NRL_UPDATE_CORPUS") != "" {
		updateRegressionCorpus(t, dir)
	}
	paths, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatalf("no committed regression traces under %s", dir)
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			rec, err := schedtrace.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if rec.Header.Kind != schedtrace.KindRegression {
				t.Fatalf("corpus trace kind %q, want %q", rec.Header.Kind, schedtrace.KindRegression)
			}
			_, div, err := ReplayTrace(rec)
			if err != nil {
				t.Fatal(err)
			}
			if div != nil {
				t.Errorf("replay diverged from the recording: %v", div)
			}
		})
	}
}

// updateRegressionCorpus re-mines the committed corpus from the broken
// strawman: one seeded campaign, first failure shrunk and written out.
func updateRegressionCorpus(t *testing.T, dir string) {
	t.Helper()
	res, err := Run(brokenConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Failure == nil {
		t.Fatal("campaign found no violation to mine")
	}
	tr := RegressionTrace(workload(t, "broken"), 1, 2, res.Failure,
		"minimized from: nrlchaos -workload broken -procs 1 -ops 2 -runs 30 -seed 42 -shrink")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteFile(filepath.Join(dir, "broken-counter-lost-inc.jsonl")); err != nil {
		t.Fatal(err)
	}
	t.Logf("corpus updated: %s", filepath.Join(dir, "broken-counter-lost-inc.jsonl"))
}
