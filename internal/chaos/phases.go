package chaos

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// PhaseCoverage records which persistence phase each real-mode kill
// landed in. It is the kill-harness analogue of Coverage: Coverage
// tracks simulated crash coordinates (object, op, line, depth), while
// PhaseCoverage tracks where in the storage commit pipeline — dirty,
// flushing, fenced, mid-commit, idle — a SIGKILL actually struck, so a
// campaign can show it exercised every station of the state machine
// rather than always dying at the same point.
type PhaseCoverage struct {
	mu    sync.Mutex
	kills map[string]uint64
}

// phaseOrder is the canonical display order: the stations of the
// persistence state machine, in pipeline order. Unknown phases sort
// after these, alphabetically.
var phaseOrder = []string{"idle", "dirty", "flushing", "fenced", "mid-commit"}

// NewPhaseCoverage returns an empty coverage table.
func NewPhaseCoverage() *PhaseCoverage {
	return &PhaseCoverage{kills: map[string]uint64{}}
}

// Record counts one kill that landed in the named phase.
func (pc *PhaseCoverage) Record(phase string) {
	pc.mu.Lock()
	pc.kills[phase]++
	pc.mu.Unlock()
}

// PhaseRow is one row of the coverage table.
type PhaseRow struct {
	Phase string
	Kills uint64
}

// Rows returns the recorded phases in pipeline order.
func (pc *PhaseCoverage) Rows() []PhaseRow {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	rank := func(p string) int {
		for i, name := range phaseOrder {
			if p == name {
				return i
			}
		}
		return len(phaseOrder)
	}
	out := make([]PhaseRow, 0, len(pc.kills))
	for p, n := range pc.kills {
		out = append(out, PhaseRow{Phase: p, Kills: n})
	}
	sort.Slice(out, func(i, j int) bool {
		ri, rj := rank(out[i].Phase), rank(out[j].Phase)
		if ri != rj {
			return ri < rj
		}
		return out[i].Phase < out[j].Phase
	})
	return out
}

// Distinct reports how many distinct phases have recorded kills.
func (pc *PhaseCoverage) Distinct() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return len(pc.kills)
}

// Total reports the total recorded kills.
func (pc *PhaseCoverage) Total() uint64 {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	var n uint64
	for _, k := range pc.kills {
		n += k
	}
	return n
}

// String renders the coverage table.
func (pc *PhaseCoverage) String() string {
	rows := pc.Rows()
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %6s\n", "phase", "kills")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %6d\n", r.Phase, r.Kills)
	}
	return b.String()
}
