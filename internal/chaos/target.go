package chaos

import (
	"fmt"
	"strconv"
	"strings"

	"nrl/internal/proc"
)

// Predicate decides whether a crash point is inside the targeted region.
// Predicates must be pure (they are consulted on every step of every run).
type Predicate func(pt proc.CrashPoint) bool

// And conjoins predicates (nil members are ignored; all-nil returns nil,
// meaning "anywhere").
func And(ps ...Predicate) Predicate {
	var live []Predicate
	for _, p := range ps {
		if p != nil {
			live = append(live, p)
		}
	}
	if len(live) == 0 {
		return nil
	}
	if len(live) == 1 {
		return live[0]
	}
	return func(pt proc.CrashPoint) bool {
		for _, p := range live {
			if !p(pt) {
				return false
			}
		}
		return true
	}
}

// ParseTarget compiles a target expression into a Predicate. The grammar
// is a '&'-conjunction of atoms:
//
//	recovery        — the line belongs to recovery code
//	await           — the process is inside an Await loop
//	depth>=N        — frame nesting depth at least N (also depth=N)
//	attempt>=N      — the current frame's recovery attempts at least N
//	                  (attempt>=1 targets a second crash of the same frame)
//	crashes>=N      — the process has already crashed at least N times
//	line=N          — a specific pseudo-code line
//	obj=NAME op=NAME — a specific object / operation
//	any             — everywhere (the empty expression means the same)
//
// Examples: "recovery&depth>=2" (crash during nested recovery), "await"
// (inside an Algorithm 3 waiting loop), "attempt>=1" (re-crash a frame
// already in recovery).
func ParseTarget(expr string) (Predicate, error) {
	expr = strings.TrimSpace(expr)
	if expr == "" || expr == "any" {
		return nil, nil
	}
	var preds []Predicate
	for _, atom := range strings.Split(expr, "&") {
		atom = strings.TrimSpace(atom)
		p, err := parseAtom(atom)
		if err != nil {
			return nil, fmt.Errorf("chaos: target %q: %w", expr, err)
		}
		preds = append(preds, p)
	}
	return And(preds...), nil
}

func parseAtom(atom string) (Predicate, error) {
	switch atom {
	case "":
		return nil, fmt.Errorf("empty atom")
	case "any":
		return nil, nil
	case "recovery":
		return func(pt proc.CrashPoint) bool { return pt.Recovery }, nil
	case "await":
		return func(pt proc.CrashPoint) bool { return pt.Awaiting }, nil
	}
	for _, sep := range []string{">=", "="} {
		i := strings.Index(atom, sep)
		if i < 0 {
			continue
		}
		key, val := atom[:i], atom[i+len(sep):]
		switch key {
		case "obj":
			if sep != "=" {
				return nil, fmt.Errorf("obj takes =")
			}
			return func(pt proc.CrashPoint) bool { return pt.Obj == val }, nil
		case "op":
			if sep != "=" {
				return nil, fmt.Errorf("op takes =")
			}
			return func(pt proc.CrashPoint) bool { return pt.Op == val }, nil
		}
		n, err := strconv.Atoi(val)
		if err != nil {
			return nil, fmt.Errorf("atom %q: bad number %q", atom, val)
		}
		ge := sep == ">="
		switch key {
		case "depth":
			return numPred(ge, n, func(pt proc.CrashPoint) int { return pt.Depth }), nil
		case "attempt":
			return numPred(ge, n, func(pt proc.CrashPoint) int { return pt.Attempt }), nil
		case "crashes":
			return numPred(ge, n, func(pt proc.CrashPoint) int { return pt.Crashes }), nil
		case "line":
			if ge {
				return nil, fmt.Errorf("line takes =")
			}
			return func(pt proc.CrashPoint) bool { return pt.Line == n }, nil
		}
		return nil, fmt.Errorf("unknown key %q", key)
	}
	return nil, fmt.Errorf("unknown atom %q (want recovery, await, depth>=N, attempt>=N, crashes>=N, line=N, obj=, op=)", atom)
}

func numPred(ge bool, n int, field func(proc.CrashPoint) int) Predicate {
	if ge {
		return func(pt proc.CrashPoint) bool { return field(pt) >= n }
	}
	return func(pt proc.CrashPoint) bool { return field(pt) == n }
}

// Staged is the deterministic staged adversary: it waits until its target
// predicate has matched Occurrence times (1-based; 0 means 1) and fires
// exactly there, once. Use it to reproduce "the predicate held and we
// crashed" scenarios without randomness, e.g.
//
//	&Staged{Target: mustTarget("recovery&depth>=2"), Occurrence: 3}
type Staged struct {
	Target     Predicate
	Occurrence int

	hits  int
	fired bool
}

// ShouldCrash implements proc.Injector.
func (s *Staged) ShouldCrash(pt proc.CrashPoint) bool {
	if s.fired || (s.Target != nil && !s.Target(pt)) {
		return false
	}
	occ := s.Occurrence
	if occ == 0 {
		occ = 1
	}
	s.hits++
	if s.hits != occ {
		return false
	}
	s.fired = true
	return true
}

// Fired reports whether the adversary has crashed its target.
func (s *Staged) Fired() bool { return s.fired }
