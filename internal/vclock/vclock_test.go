package vclock_test

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"nrl/internal/vclock"
)

// TestClockAdvances: Sleep and Advance accumulate monotonically and
// Now reflects the elapsed virtual time against the virtual epoch.
func TestClockAdvances(t *testing.T) {
	c := vclock.NewClock()
	if got := c.Elapsed(); got != 0 {
		t.Fatalf("fresh clock elapsed %v, want 0", got)
	}
	c.Sleep(5 * time.Millisecond)
	c.Sleep(-time.Second) // negative sleeps advance nothing
	c.Advance(3 * time.Millisecond)
	c.Advance(-time.Hour)
	if got, want := c.Elapsed(), 8*time.Millisecond; got != want {
		t.Fatalf("elapsed %v, want %v", got, want)
	}
	if got, want := c.Sleeps(), uint64(2); got != want {
		t.Fatalf("sleeps %d, want %d", got, want)
	}
	if got, want := c.Now(), (time.Time{}).Add(8*time.Millisecond); !got.Equal(want) {
		t.Fatalf("Now %v, want %v", got, want)
	}
}

// TestClockDeterministic: two clocks fed the same sleep schedule agree
// exactly — the property that makes virtual backoff replayable.
func TestClockDeterministic(t *testing.T) {
	sched := []time.Duration{time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond, 50 * time.Microsecond}
	a, b := vclock.NewClock(), vclock.NewClock()
	for _, d := range sched {
		a.Sleep(d)
		b.Sleep(d)
	}
	if a.Elapsed() != b.Elapsed() || a.Sleeps() != b.Sleeps() || !a.Now().Equal(b.Now()) {
		t.Fatalf("clocks diverged: %v/%d vs %v/%d", a.Elapsed(), a.Sleeps(), b.Elapsed(), b.Sleeps())
	}
}

// TestClockConcurrent: concurrent sleepers never lose an advance
// (run with -race in CI's lint job).
func TestClockConcurrent(t *testing.T) {
	c := vclock.NewClock()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Sleep(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got, want := c.Elapsed(), 800*time.Microsecond; got != want {
		t.Fatalf("elapsed %v, want %v", got, want)
	}
	if got, want := c.Sleeps(), uint64(800); got != want {
		t.Fatalf("sleeps %d, want %d", got, want)
	}
}

// TestRandStreamsDeterministic: same (seed, stream) pairs replay the
// same draw sequence; distinct streams of one seed decorrelate.
func TestRandStreamsDeterministic(t *testing.T) {
	a := vclock.NewRand(42, 3)
	b := vclock.NewRand(42, 3)
	other := vclock.NewRand(42, 4)
	same, diff := true, false
	for i := 0; i < 64; i++ {
		x, y := a.Int63n(1<<40), b.Int63n(1<<40)
		if x != y {
			same = false
		}
		if x != other.Int63n(1<<40) {
			diff = true
		}
	}
	if !same {
		t.Fatalf("identical streams diverged")
	}
	if !diff {
		t.Fatalf("streams 3 and 4 of seed 42 are identical")
	}
}

// TestRandDegenerateBounds: non-positive bounds return zero instead of
// panicking, and never consume a draw that would shift the stream.
func TestRandDegenerateBounds(t *testing.T) {
	r := vclock.NewRand(7, 0)
	ref := vclock.NewRand(7, 0)
	if r.Int63n(0) != 0 || r.Int63n(-5) != 0 || r.Intn(0) != 0 || r.Duration(0) != 0 || r.Jitter(0) != 0 {
		t.Fatalf("degenerate bounds must return 0")
	}
	// The degenerate calls above consumed nothing: the next draw still
	// matches a fresh stream's first draw.
	if got, want := r.Int63n(1<<30), ref.Int63n(1<<30); got != want {
		t.Fatalf("degenerate draws consumed stream state: %d != %d", got, want)
	}
}

// TestJitterRange: Jitter(d) stays within [d/2, d] — half fixed, half
// random, matching the retry-spreading contract.
func TestJitterRange(t *testing.T) {
	r := vclock.FromSource(rand.NewSource(1))
	d := 10 * time.Millisecond
	for i := 0; i < 200; i++ {
		j := r.Jitter(d)
		if j < d/2 || j > d {
			t.Fatalf("jitter %v outside [%v, %v]", j, d/2, d)
		}
	}
}

// TestWallPair: the production pair really is the runtime clock.
func TestWallPair(t *testing.T) {
	t0 := vclock.WallNow()
	vclock.WallSleep(time.Millisecond)
	if since := time.Since(t0); since < time.Millisecond {
		t.Fatalf("WallSleep(1ms) returned after %v", since)
	}
}
