// Package vclock is the virtual timebase behind deterministic chaos:
// a monotonic logical clock whose time advances only when someone
// sleeps on it, plus seeded jitter streams split from one campaign
// seed via proc.SplitSeed. Every nondeterminism site in the chaos,
// replica and persist layers draws its delays and random choices
// through these two primitives, so a recorded campaign schedule is a
// pure function of its seed and replays bit-for-bit (DESIGN.md §11).
//
// The package exposes both regimes behind the same shapes:
//
//   - Clock.Sleep / Clock.Now satisfy the persist.Options.Sleep and
//     replica backoff hooks with virtual time — Sleep never blocks, it
//     advances the logical clock and counts the advance, so a test or
//     replay runs at full speed and still observes identical backoff
//     arithmetic.
//   - WallSleep / WallNow are the production defaults: thin wrappers
//     over the runtime clock, kept here so the detclock analyzer can
//     hold the chaos/replica/persist packages to zero raw time calls
//     (the one place the wall clock enters is this package).
//
// Rand wraps a seeded math/rand source and is the only randomness the
// deterministic paths consume; NewRand derives uncorrelated streams
// from (seed, stream) pairs so concurrent consumers never share or
// race a generator.
package vclock

import (
	"math/rand"
	"sync"
	"time"

	"nrl/internal/proc"
)

// Clock is a monotonic virtual clock. The zero value starts at the
// virtual epoch (zero elapsed time); it is safe for concurrent use.
type Clock struct {
	mu      sync.Mutex
	elapsed time.Duration
	sleeps  uint64
}

// NewClock returns a virtual clock started at the virtual epoch.
func NewClock() *Clock { return &Clock{} }

// Sleep advances the virtual clock by d without blocking. Non-positive
// durations still count as a sleep but advance nothing, mirroring the
// runtime's time.Sleep contract.
func (c *Clock) Sleep(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sleeps++
	if d > 0 {
		c.elapsed += d
	}
}

// Advance moves the clock forward by d without counting a sleep (the
// campaign layer uses it to account time that elapsed outside any
// Sleep hook, e.g. a recorded kill delay).
func (c *Clock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.elapsed += d
}

// Now returns the current virtual instant: the virtual epoch plus the
// elapsed virtual time. The epoch is time.Time{}'s zero instant, so
// two clocks that slept the same schedule report equal instants.
func (c *Clock) Now() time.Time {
	return time.Time{}.Add(c.Elapsed())
}

// Elapsed returns the total virtual time the clock has advanced.
func (c *Clock) Elapsed() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.elapsed
}

// Sleeps returns how many times Sleep has been called — the virtual
// schedule's retry/backoff count, recorded into schedule traces.
func (c *Clock) Sleeps() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sleeps
}

// WallSleep is the production sleeper: the runtime clock. It exists so
// packages under the detclock discipline can default their injectable
// Sleep hooks without touching the time package themselves.
func WallSleep(d time.Duration) { time.Sleep(d) }

// WallNow is the production clock read, the Nower counterpart of
// WallSleep, for telemetry timestamps outside the deterministic paths.
func WallNow() time.Time { return time.Now() }

// Rand is a seeded, mutex-guarded random stream: the only randomness
// the deterministic chaos/replica paths consume. The lock makes the
// draw sequence a pure function of the arrival order of draws, which
// is itself deterministic under the controlled schedulers.
type Rand struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewRand derives stream `stream` of master seed `seed` via
// proc.SplitSeed, so nearby stream indices yield uncorrelated
// generators and every consumer can own its stream without sharing.
func NewRand(seed int64, stream int) *Rand {
	return FromSource(rand.NewSource(proc.SplitSeed(seed, stream)))
}

// FromSource wraps an explicit source (replica.Options.Source and
// tests inject through it).
func FromSource(src rand.Source) *Rand {
	return &Rand{rng: rand.New(src)}
}

// NewSeeded wraps a stream seeded directly with seed — for call sites
// whose seed was already split from a master (chaos derives one
// injector seed per run via proc.SplitSeed before constructing it).
func NewSeeded(seed int64) *Rand {
	return FromSource(rand.NewSource(seed))
}

// Int63n returns a uniform int64 in [0, n). n <= 0 returns 0 rather
// than panicking: jitter call sites pass half-delays that can round to
// zero, and "no jitter" is the right degenerate answer.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rng.Int63n(n)
}

// Intn returns a uniform int in [0, n); n <= 0 returns 0.
func (r *Rand) Intn(n int) int {
	return int(r.Int63n(int64(n)))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rng.Float64()
}

// Duration returns a uniform duration in [0, max); max <= 0 returns 0.
func (r *Rand) Duration(max time.Duration) time.Duration {
	return time.Duration(r.Int63n(int64(max)))
}

// Jitter returns d/2 plus a uniform draw from [0, d/2], the
// half-fixed/half-random spreading both the replica ship retry and the
// persist backoff use to decorrelate retry storms.
func (r *Rand) Jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return d/2 + time.Duration(r.Int63n(int64(d/2)+1))
}
