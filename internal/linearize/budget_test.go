package linearize

import (
	"errors"
	"testing"

	"nrl/internal/spec"
)

// TestSearchBudgetExceeded: a one-node budget cannot order two required
// operations, and the failure is distinguishable from a genuine
// non-linearizable verdict via ErrSearchBudget.
func TestSearchBudgetExceeded(t *testing.T) {
	ops := []opRec{
		{id: 1, name: "WRITE", args: []uint64{7}, inv: 1, res: 2, mustMatch: true, required: true},
		{id: 2, name: "READ", inv: 3, res: 4, ret: 7, mustMatch: true, required: true},
	}
	if _, err := checkOps(spec.Register{}, ops, 1); !errors.Is(err, ErrSearchBudget) {
		t.Fatalf("err = %v, want ErrSearchBudget", err)
	}
	// The same input succeeds under the default budget, proving the budget
	// (not the history) caused the failure.
	order, err := checkOps(spec.Register{}, ops, 0)
	if err != nil {
		t.Fatalf("default budget: %v", err)
	}
	if len(order) != 2 || order[0] != 1 {
		t.Errorf("order = %v, want [1 2]", order)
	}
}

// TestConventionModels resolves nested base objects by naming convention
// and prefers explicit entries.
func TestConventionModels(t *testing.T) {
	mf := ConventionModels(map[string]spec.Model{"ctr": spec.Counter{}})
	cases := []struct {
		obj  string
		want string
	}{
		{"ctr", "counter"},
		{"ctr.R[3]", "register"},
		{"faa.cas", "cas"},
		{"stk.top", "cas"},
		{"q.head", "cas"},
		{"q.tail", "cas"},
		{"stk.alloc", "faa"},
		{"lock.next", "faa"},
	}
	for _, tc := range cases {
		m := mf(tc.obj)
		if m == nil {
			t.Errorf("no model for %q", tc.obj)
			continue
		}
		if m.Name() != tc.want {
			t.Errorf("model for %q = %s, want %s", tc.obj, m.Name(), tc.want)
		}
	}
	if mf("unknown") != nil {
		t.Error("unknown object resolved to a model")
	}
}
