package linearize

import (
	"strings"

	"nrl/internal/spec"
)

// ConventionModels builds a ModelFor that resolves both the objects the
// caller names explicitly and, by naming convention, the recoverable base
// objects nested inside this module's composite objects:
//
//	<name>.R[i]                      — registers inside a Counter
//	<name>.cas, .top, .head, .tail   — CAS objects inside FAA,
//	                                   MaxRegister, Stack and Queue
//	<name>.alloc, <name>.next        — FAA objects inside Stack, Queue
//	                                   and Lock
//
// The facade's nrl.Models delegates here; internal packages (harness,
// chaos, the CLIs) use it directly to avoid importing the facade.
func ConventionModels(explicit map[string]spec.Model) ModelFor {
	return func(obj string) spec.Model {
		if m, ok := explicit[obj]; ok {
			return m
		}
		switch {
		case strings.Contains(obj, ".R["):
			return spec.Register{}
		case strings.HasSuffix(obj, ".cas"), strings.HasSuffix(obj, ".top"),
			strings.HasSuffix(obj, ".head"), strings.HasSuffix(obj, ".tail"):
			return spec.CAS{}
		case strings.HasSuffix(obj, ".alloc"), strings.HasSuffix(obj, ".next"):
			return spec.FAA{}
		}
		return nil
	}
}
