// Package linearize checks histories against sequential specifications.
//
// The core is a Wing–Gong/Lowe-style search with memoization: it looks for
// a total order of the history's operations that (1) respects the
// happens-before order of non-overlapping operations and (2) is accepted
// by the sequential model with the responses the history observed. On top
// of the core, the package implements the correctness conditions relevant
// to the paper: linearizability (Definition 2), nesting-safe recoverable
// linearizability (Definition 4), and — for the Section 4 comparison —
// strict linearizability, persistent atomicity and transient atomicity.
package linearize

import (
	"fmt"
	"math"

	"nrl/internal/history"
	"nrl/internal/spec"
)

// opRec is the core's view of one operation.
type opRec struct {
	id   int64
	name string
	args []uint64
	ret  uint64
	inv  int64 // sequence number of the invocation
	res  int64 // latest point at which the op may be linearized
	// mustMatch requires the model's response to equal ret (set for
	// completed operations).
	mustMatch bool
	// required operations must appear in the linearization; others
	// (pending or crash-interrupted, depending on the condition) may be
	// dropped.
	required bool
}

const seqInf = math.MaxInt64

// ErrNotLinearizable is the base explanation for a failed check; errors
// returned by the checkers wrap context around this text.
var errNotLinearizable = fmt.Errorf("no valid linearization exists")

// DefaultSearchLimit bounds the number of search nodes expanded before
// the checker gives up, to keep adversarial inputs from hanging tests.
const DefaultSearchLimit = 20_000_000

// ErrSearchBudget is wrapped by errors returned when the search gave up
// before reaching a verdict: the history is neither proved linearizable
// nor proved broken. Campaign runners detect it with errors.Is and degrade
// to a windowed check over a history prefix instead of failing the run.
var ErrSearchBudget = fmt.Errorf("linearize: search budget exceeded")

type memoKey struct {
	bits  string
	state any
}

// checkOps searches for a linearization of ops under m, expanding at most
// limit search nodes (<= 0 applies DefaultSearchLimit). It returns the
// witness order (operation ids) on success; when the budget runs out the
// error wraps ErrSearchBudget.
func checkOps(m spec.Model, ops []opRec, limit int) ([]int64, error) {
	if limit <= 0 {
		limit = DefaultSearchLimit
	}
	n := len(ops)
	required := 0
	for i := range ops {
		if ops[i].required {
			required++
		}
	}
	var (
		linearized = make([]bool, n)
		bits       = make([]byte, (n+7)/8)
		order      = make([]int64, 0, n)
		memo       = make(map[memoKey]bool)
		nodes      = 0
		applyErr   error
	)
	var search func(state any, done int, maxInvLin int64) bool
	search = func(state any, done int, maxInvLin int64) bool {
		if done == required {
			return true
		}
		nodes++
		if nodes > limit {
			applyErr = fmt.Errorf("%w (%d nodes)", ErrSearchBudget, limit)
			return false
		}
		key := memoKey{bits: string(bits), state: state}
		if memo[key] {
			return false
		}
		memo[key] = true
		// minRes: earliest deadline among unlinearized required ops. An op
		// invoked after that deadline cannot be linearized yet.
		minRes := int64(seqInf)
		for i := range ops {
			if !linearized[i] && ops[i].required && ops[i].res < minRes {
				minRes = ops[i].res
			}
		}
		for i := range ops {
			o := &ops[i]
			if linearized[i] || o.inv > minRes || o.res < maxInvLin {
				continue
			}
			st2, resp, err := m.Apply(state, o.name, o.args)
			if err != nil {
				applyErr = err
				return false
			}
			if o.mustMatch && resp != o.ret {
				continue
			}
			linearized[i] = true
			bits[i/8] |= 1 << (i % 8)
			order = append(order, o.id)
			d := done
			if o.required {
				d++
			}
			mi := maxInvLin
			if o.inv > mi {
				mi = o.inv
			}
			if search(st2, d, mi) {
				return true
			}
			if applyErr != nil {
				return false
			}
			linearized[i] = false
			bits[i/8] &^= 1 << (i % 8)
			order = order[:len(order)-1]
		}
		return false
	}
	if search(m.Init(), 0, -1) {
		return order, nil
	}
	if applyErr != nil {
		return nil, applyErr
	}
	return nil, errNotLinearizable
}

// opsFromHistory converts a crash-free single-object history into opRecs
// with standard linearizability semantics: completed operations are
// required and must match their responses; pending operations may be
// linearized (with any legal response) or dropped.
func opsFromHistory(h history.History) []opRec {
	ivs := h.Ops()
	out := make([]opRec, 0, len(ivs))
	for _, iv := range ivs {
		r := opRec{
			id:   iv.Inv.OpID,
			name: iv.Inv.Op,
			args: iv.Inv.Args,
			inv:  iv.Inv.Seq,
			res:  seqInf,
		}
		if iv.Completed() {
			r.res = iv.Res.Seq
			r.ret = iv.Res.Ret
			r.mustMatch = true
			r.required = true
		}
		out = append(out, r)
	}
	return out
}

// ModelFor maps an object name to its sequential specification; it
// returns nil for unknown objects.
type ModelFor func(obj string) spec.Model

// Models adapts a fixed map to a ModelFor.
func Models(m map[string]spec.Model) ModelFor {
	return func(obj string) spec.Model { return m[obj] }
}

// CheckObject verifies that the crash-free history of a single object is
// linearizable with respect to m, returning the witness order on success.
func CheckObject(m spec.Model, h history.History) ([]int64, error) {
	return CheckObjectBudget(m, h, 0)
}

// CheckObjectBudget is CheckObject with an explicit node budget (<= 0
// applies DefaultSearchLimit). An exhausted budget yields an error
// wrapping ErrSearchBudget.
func CheckObjectBudget(m spec.Model, h history.History, limit int) ([]int64, error) {
	if !h.CrashFree() {
		return nil, fmt.Errorf("linearize: history contains crash steps; project with NoCrash first")
	}
	order, err := checkOps(m, opsFromHistory(h), limit)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", m.Name(), err)
	}
	return order, nil
}

// Check verifies Definition 2 for a crash-free history: every object's
// subhistory must be linearizable against its model.
func Check(modelFor ModelFor, h history.History) error {
	return CheckBudget(modelFor, h, 0)
}

// CheckBudget is Check with an explicit per-object node budget.
func CheckBudget(modelFor ModelFor, h history.History, limit int) error {
	if err := h.CheckWellFormed(); err != nil {
		return err
	}
	for _, obj := range h.Objects() {
		m := modelFor(obj)
		if m == nil {
			return fmt.Errorf("linearize: no model for object %q", obj)
		}
		if _, err := CheckObjectBudget(m, h.ByObject(obj), limit); err != nil {
			return fmt.Errorf("object %q: %w", obj, err)
		}
	}
	return nil
}

// CheckNRL verifies Definition 4 (nesting-safe recoverable
// linearizability): the history must be recoverable well-formed, and N(H)
// must be linearizable.
func CheckNRL(modelFor ModelFor, h history.History) error {
	return CheckNRLBudget(modelFor, h, 0)
}

// CheckNRLBudget is CheckNRL with an explicit per-object node budget for
// the linearization search (<= 0 applies DefaultSearchLimit). Campaign
// runners pass a small budget and fall back to a windowed check over a
// history prefix when the returned error wraps ErrSearchBudget — any
// prefix of a recoverable-well-formed history is itself recoverable
// well-formed (a crash may be a process's last step), so the windowed
// verdict is sound, just partial.
func CheckNRLBudget(modelFor ModelFor, h history.History, limit int) error {
	if err := h.CheckRecoverableWellFormed(); err != nil {
		return fmt.Errorf("not recoverable well-formed: %w", err)
	}
	if err := CheckBudget(modelFor, h.NoCrash(), limit); err != nil {
		return fmt.Errorf("N(H) not linearizable: %w", err)
	}
	return nil
}
