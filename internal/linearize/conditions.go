package linearize

import (
	"fmt"

	"nrl/internal/history"
)

// This file implements the correctness conditions the paper compares
// against in Section 4. They differ from NRL in how an operation
// interrupted by a crash may be accounted for:
//
//   - Strict linearizability (Aguilera & Frølund): the interrupted
//     operation takes effect before the crash or not at all.
//   - Persistent atomicity (Guerraoui & Levy): the interrupted operation
//     may take effect any time before the same process's next invocation.
//   - Transient atomicity (Guerraoui & Levy): the interrupted operation
//     may take effect any time before the same process's next completed
//     WRITE response.
//
// Unlike NRL, these conditions have no notion of recovery code completing
// the interrupted operation; they apply to histories in which a crashed
// process either halts or simply proceeds to its next operation. None of
// them lets a higher-level operation learn the interrupted operation's
// response, which is the gap NRL closes.

// abortDeadline computes, for an operation of process p invoked at invSeq
// and never completed, the latest sequence number at which the operation
// may be linearized under the given condition. h is the full history.
type abortDeadline func(h history.History, p int, invSeq int64) int64

func strictDeadline(h history.History, p int, invSeq int64) int64 {
	for _, s := range h.Steps {
		if s.Proc == p && s.Kind == history.Crash && s.Seq > invSeq {
			return s.Seq
		}
	}
	return seqInf
}

func persistentDeadline(h history.History, p int, invSeq int64) int64 {
	crash := strictDeadline(h, p, invSeq)
	if crash == seqInf {
		return seqInf
	}
	for _, s := range h.Steps {
		if s.Proc == p && s.Kind == history.Inv && s.Seq > crash {
			return s.Seq
		}
	}
	return seqInf
}

func transientDeadline(h history.History, p int, invSeq int64) int64 {
	crash := strictDeadline(h, p, invSeq)
	if crash == seqInf {
		return seqInf
	}
	for _, s := range h.Steps {
		if s.Proc == p && s.Kind == history.Res && s.Op == "WRITE" && s.Seq > crash {
			return s.Seq
		}
	}
	return seqInf
}

func checkCondition(modelFor ModelFor, h history.History, deadline abortDeadline) error {
	for _, obj := range h.Objects() {
		m := modelFor(obj)
		if m == nil {
			return fmt.Errorf("linearize: no model for object %q", obj)
		}
		sub := h.ByObject(obj)
		ops := make([]opRec, 0, len(sub.Steps)/2)
		for _, iv := range sub.NoCrash().Ops() {
			r := opRec{
				id:   iv.Inv.OpID,
				name: iv.Inv.Op,
				args: iv.Inv.Args,
				inv:  iv.Inv.Seq,
			}
			if iv.Completed() {
				r.res = iv.Res.Seq
				r.ret = iv.Res.Ret
				r.mustMatch = true
				r.required = true
			} else {
				r.res = deadline(h, iv.Inv.Proc, iv.Inv.Seq)
			}
			ops = append(ops, r)
		}
		if _, err := checkOps(m, ops, 0); err != nil {
			return fmt.Errorf("object %q: %w", obj, err)
		}
	}
	return nil
}

// CheckStrictLinearizability checks h (which may contain crash steps of
// processes that never recover) against strict linearizability.
func CheckStrictLinearizability(modelFor ModelFor, h history.History) error {
	return checkCondition(modelFor, h, strictDeadline)
}

// CheckPersistentAtomicity checks h against persistent atomicity.
func CheckPersistentAtomicity(modelFor ModelFor, h history.History) error {
	return checkCondition(modelFor, h, persistentDeadline)
}

// CheckTransientAtomicity checks h against transient atomicity.
func CheckTransientAtomicity(modelFor ModelFor, h history.History) error {
	return checkCondition(modelFor, h, transientDeadline)
}
