package linearize

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"nrl/internal/history"
	"nrl/internal/spec"
)

// hb (history builder) accumulates steps through a recorder.
type hb struct{ r *history.Recorder }

func newHB() *hb { return &hb{r: history.NewRecorder()} }

func (b *hb) inv(p int, obj, op string, id int64, args ...uint64) *hb {
	b.r.Append(history.Step{Kind: history.Inv, Proc: p, Obj: obj, Op: op, OpID: id, Args: args})
	return b
}

func (b *hb) res(p int, obj, op string, id int64, ret uint64) *hb {
	b.r.Append(history.Step{Kind: history.Res, Proc: p, Obj: obj, Op: op, OpID: id, Ret: ret})
	return b
}

func (b *hb) crash(p int, obj, op string, id int64) *hb {
	b.r.Append(history.Step{Kind: history.Crash, Proc: p, Obj: obj, Op: op, OpID: id})
	return b
}

func (b *hb) rec(p int, obj, op string, id int64) *hb {
	b.r.Append(history.Step{Kind: history.Rec, Proc: p, Obj: obj, Op: op, OpID: id})
	return b
}

func (b *hb) hist() history.History { return b.r.History() }

func regModels() ModelFor {
	return func(obj string) spec.Model { return spec.Register{} }
}

func TestSequentialRegisterAccepted(t *testing.T) {
	h := newHB().
		inv(1, "x", "WRITE", 1, 5).res(1, "x", "WRITE", 1, spec.Ack).
		inv(2, "x", "READ", 2).res(2, "x", "READ", 2, 5).
		hist()
	if err := Check(regModels(), h); err != nil {
		t.Errorf("Check = %v, want nil", err)
	}
}

func TestStaleReadRejected(t *testing.T) {
	// WRITE(5) completes strictly before a READ that returns 0.
	h := newHB().
		inv(1, "x", "WRITE", 1, 5).res(1, "x", "WRITE", 1, spec.Ack).
		inv(2, "x", "READ", 2).res(2, "x", "READ", 2, 0).
		hist()
	if err := Check(regModels(), h); err == nil {
		t.Error("Check accepted a stale read")
	}
}

func TestConcurrentWritesEitherOrder(t *testing.T) {
	// Two overlapping writes; a later read may see either one.
	for _, final := range []uint64{5, 7} {
		h := newHB().
			inv(1, "x", "WRITE", 1, 5).
			inv(2, "x", "WRITE", 2, 7).
			res(1, "x", "WRITE", 1, spec.Ack).
			res(2, "x", "WRITE", 2, spec.Ack).
			inv(3, "x", "READ", 3).res(3, "x", "READ", 3, final).
			hist()
		if err := Check(regModels(), h); err != nil {
			t.Errorf("final=%d: Check = %v, want nil", final, err)
		}
	}
	// But not a value nobody wrote.
	h := newHB().
		inv(1, "x", "WRITE", 1, 5).
		inv(2, "x", "WRITE", 2, 7).
		res(1, "x", "WRITE", 1, spec.Ack).
		res(2, "x", "WRITE", 2, spec.Ack).
		inv(3, "x", "READ", 3).res(3, "x", "READ", 3, 9).
		hist()
	if err := Check(regModels(), h); err == nil {
		t.Error("Check accepted a read of a never-written value")
	}
}

func TestPendingOpMayTakeEffectOrNot(t *testing.T) {
	// A pending WRITE(5) may explain a read of 5...
	h := newHB().
		inv(1, "x", "WRITE", 1, 5).
		inv(2, "x", "READ", 2).res(2, "x", "READ", 2, 5).
		hist()
	if err := Check(regModels(), h); err != nil {
		t.Errorf("pending write observed: %v, want nil", err)
	}
	// ...or be dropped when the read sees the old value.
	h = newHB().
		inv(1, "x", "WRITE", 1, 5).
		inv(2, "x", "READ", 2).res(2, "x", "READ", 2, 0).
		hist()
	if err := Check(regModels(), h); err != nil {
		t.Errorf("pending write dropped: %v, want nil", err)
	}
}

func TestCASHistory(t *testing.T) {
	casModels := func(string) spec.Model { return spec.CAS{} }
	// Two concurrent CAS(0,_) — exactly one may succeed.
	h := newHB().
		inv(1, "c", "CAS", 1, 0, 5).
		inv(2, "c", "CAS", 2, 0, 7).
		res(1, "c", "CAS", 1, 1).
		res(2, "c", "CAS", 2, 0).
		inv(1, "c", "READ", 3).res(1, "c", "READ", 3, 5).
		hist()
	if err := Check(casModels, h); err != nil {
		t.Errorf("Check = %v, want nil", err)
	}
	// Both succeeding is not linearizable.
	h = newHB().
		inv(1, "c", "CAS", 1, 0, 5).
		inv(2, "c", "CAS", 2, 0, 7).
		res(1, "c", "CAS", 1, 1).
		res(2, "c", "CAS", 2, 1).
		hist()
	if err := Check(casModels, h); err == nil {
		t.Error("Check accepted two successful CAS(0,_)")
	}
}

func TestTASHistory(t *testing.T) {
	tasModels := func(string) spec.Model { return spec.TAS{} }
	h := newHB().
		inv(1, "t", "T&S", 1).
		inv(2, "t", "T&S", 2).
		res(1, "t", "T&S", 1, 0).
		res(2, "t", "T&S", 2, 1).
		hist()
	if err := Check(tasModels, h); err != nil {
		t.Errorf("Check = %v, want nil", err)
	}
	// Two winners violate the spec.
	h = newHB().
		inv(1, "t", "T&S", 1).res(1, "t", "T&S", 1, 0).
		inv(2, "t", "T&S", 2).res(2, "t", "T&S", 2, 0).
		hist()
	if err := Check(tasModels, h); err == nil {
		t.Error("Check accepted two T&S winners")
	}
}

func TestWitnessOrder(t *testing.T) {
	h := newHB().
		inv(1, "x", "WRITE", 1, 5).res(1, "x", "WRITE", 1, spec.Ack).
		inv(2, "x", "READ", 2).res(2, "x", "READ", 2, 5).
		hist()
	order, err := CheckObject(spec.Register{}, h)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Errorf("witness order = %v, want [1 2]", order)
	}
}

func TestCheckObjectRejectsCrashSteps(t *testing.T) {
	h := newHB().
		inv(1, "x", "WRITE", 1, 5).
		crash(1, "x", "WRITE", 1).
		hist()
	if _, err := CheckObject(spec.Register{}, h); err == nil {
		t.Error("CheckObject accepted a history with crash steps")
	}
}

func TestCheckMissingModel(t *testing.T) {
	h := newHB().
		inv(1, "x", "WRITE", 1, 5).res(1, "x", "WRITE", 1, spec.Ack).
		hist()
	if err := Check(Models(map[string]spec.Model{}), h); err == nil ||
		!strings.Contains(err.Error(), "no model") {
		t.Errorf("Check = %v, want missing-model error", err)
	}
}

func TestCheckNRL(t *testing.T) {
	// A write crashes, recovers, completes; a later read sees it.
	good := newHB().
		inv(1, "x", "WRITE", 1, 5).
		crash(1, "x", "WRITE", 1).
		rec(1, "x", "WRITE", 1).
		res(1, "x", "WRITE", 1, spec.Ack).
		inv(2, "x", "READ", 2).res(2, "x", "READ", 2, 5).
		hist()
	if err := CheckNRL(regModels(), good); err != nil {
		t.Errorf("CheckNRL = %v, want nil", err)
	}

	// Same but the read sees a stale value even though the recovered
	// write completed before it: N(H) is not linearizable.
	badLin := newHB().
		inv(1, "x", "WRITE", 1, 5).
		crash(1, "x", "WRITE", 1).
		rec(1, "x", "WRITE", 1).
		res(1, "x", "WRITE", 1, spec.Ack).
		inv(2, "x", "READ", 2).res(2, "x", "READ", 2, 0).
		hist()
	if err := CheckNRL(regModels(), badLin); err == nil {
		t.Error("CheckNRL accepted a non-linearizable N(H)")
	}

	// A step after a crash without recovery violates recoverable
	// well-formedness.
	badWF := newHB().
		inv(1, "x", "WRITE", 1, 5).
		crash(1, "x", "WRITE", 1).
		res(1, "x", "WRITE", 1, spec.Ack).
		hist()
	if err := CheckNRL(regModels(), badWF); err == nil {
		t.Error("CheckNRL accepted a non-recoverable-well-formed history")
	}
}

func TestNestedObjectsCheckedIndependently(t *testing.T) {
	models := Models(map[string]spec.Model{
		"ctr": spec.Counter{},
		"reg": spec.Register{},
	})
	h := newHB().
		inv(1, "ctr", "INC", 1).
		inv(1, "reg", "READ", 2).res(1, "reg", "READ", 2, 0).
		inv(1, "reg", "WRITE", 3, 1).res(1, "reg", "WRITE", 3, spec.Ack).
		res(1, "ctr", "INC", 1, spec.Ack).
		inv(2, "ctr", "READ", 4).res(2, "ctr", "READ", 4, 1).
		hist()
	if err := Check(models, h); err != nil {
		t.Errorf("Check = %v, want nil", err)
	}
}

// TestQuickSequentialHistoriesLinearizable generates random sequential
// histories straight from a model; they must always pass.
func TestQuickSequentialHistoriesLinearizable(t *testing.T) {
	ops := []struct {
		name  string
		nargs int
	}{{"READ", 0}, {"WRITE", 1}}
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := spec.Register{}
		st := m.Init()
		b := newHB()
		for i := 0; i < int(n)%40; i++ {
			o := ops[rng.Intn(len(ops))]
			var args []uint64
			for j := 0; j < o.nargs; j++ {
				args = append(args, uint64(rng.Intn(5)))
			}
			st2, resp, err := m.Apply(st, o.name, args)
			if err != nil {
				return false
			}
			st = st2
			p := rng.Intn(3) + 1
			id := int64(i + 1)
			b.inv(p, "x", o.name, id, args...)
			b.res(p, "x", o.name, id, resp)
		}
		return Check(regModels(), b.hist()) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestConditionHierarchy(t *testing.T) {
	models := regModels()

	// p1 crashes inside WRITE(1) and never recovers; later reads see 0
	// then 1: the write took effect after the crash. Strict
	// linearizability forbids this; persistent atomicity allows it.
	lateEffect := newHB().
		inv(1, "x", "WRITE", 1, 1).
		crash(1, "x", "WRITE", 1).
		inv(2, "x", "READ", 2).res(2, "x", "READ", 2, 0).
		inv(2, "x", "READ", 3).res(2, "x", "READ", 3, 1).
		hist()
	if err := CheckStrictLinearizability(models, lateEffect); err == nil {
		t.Error("strict linearizability accepted a post-crash effect")
	}
	if err := CheckPersistentAtomicity(models, lateEffect); err != nil {
		t.Errorf("persistent atomicity rejected a pre-next-invocation effect: %v", err)
	}
	if err := CheckTransientAtomicity(models, lateEffect); err != nil {
		t.Errorf("transient atomicity rejected a pre-next-write effect: %v", err)
	}

	// The interrupted write takes effect only after p1's next invocation:
	// persistent atomicity forbids it, transient atomicity (deadline at
	// the next WRITE *response*) still allows it.
	afterNextInv := newHB().
		inv(1, "x", "WRITE", 1, 1).
		crash(1, "x", "WRITE", 1).
		inv(1, "y", "WRITE", 2, 9).
		inv(2, "x", "READ", 3).res(2, "x", "READ", 3, 0).
		res(1, "y", "WRITE", 2, spec.Ack).
		inv(2, "x", "READ", 4).res(2, "x", "READ", 4, 1).
		hist()
	casOrReg := func(obj string) spec.Model { return spec.Register{} }
	if err := CheckPersistentAtomicity(casOrReg, afterNextInv); err == nil {
		t.Error("persistent atomicity accepted an effect after the next invocation")
	}
	if err := CheckTransientAtomicity(casOrReg, afterNextInv); err != nil {
		t.Errorf("transient atomicity rejected a pre-write-response effect: %v", err)
	}

	// A crash-free linearizable history satisfies all conditions.
	plain := newHB().
		inv(1, "x", "WRITE", 1, 5).res(1, "x", "WRITE", 1, spec.Ack).
		inv(2, "x", "READ", 2).res(2, "x", "READ", 2, 5).
		hist()
	for name, check := range map[string]func(ModelFor, history.History) error{
		"strict":     CheckStrictLinearizability,
		"persistent": CheckPersistentAtomicity,
		"transient":  CheckTransientAtomicity,
	} {
		if err := check(models, plain); err != nil {
			t.Errorf("%s rejected a plain linearizable history: %v", name, err)
		}
	}
}

func TestAbortedOpMayBeDropped(t *testing.T) {
	// The crashed write never takes effect; all conditions accept.
	h := newHB().
		inv(1, "x", "WRITE", 1, 1).
		crash(1, "x", "WRITE", 1).
		inv(2, "x", "READ", 2).res(2, "x", "READ", 2, 0).
		hist()
	if err := CheckStrictLinearizability(regModels(), h); err != nil {
		t.Errorf("strict: %v", err)
	}
	if err := CheckPersistentAtomicity(regModels(), h); err != nil {
		t.Errorf("persistent: %v", err)
	}
}

// TestQuickConditionHierarchy: on random crash histories, the Section 4
// conditions must be ordered — any history satisfying strict
// linearizability satisfies persistent atomicity, and any satisfying
// persistent atomicity satisfies transient atomicity (the deadlines are
// monotone). Randomized consistency check across the three checkers.
func TestQuickConditionHierarchy(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	models := regModels()
	accepted := [3]int{}
	for trial := 0; trial < 800; trial++ {
		b := newHB()
		id := int64(1)
		crashed := map[int]bool{}
		n := rng.Intn(6) + 1
		for i := 0; i < n; i++ {
			p := rng.Intn(2) + 1
			if crashed[p] {
				continue
			}
			op := "WRITE"
			args := []uint64{uint64(rng.Intn(3) + 1)}
			if rng.Intn(2) == 0 {
				op = "READ"
				args = nil
			}
			b.inv(p, "x", op, id, args...)
			switch rng.Intn(3) {
			case 0: // complete with a random (possibly wrong) response
				ret := spec.Ack
				if op == "READ" {
					ret = uint64(rng.Intn(4))
				}
				b.res(p, "x", op, id, ret)
			case 1: // crash the process inside the op, permanently
				b.crash(p, "x", op, id)
				crashed[p] = true
			default: // leave pending
			}
			id++
		}
		h := b.hist()
		strict := CheckStrictLinearizability(models, h) == nil
		persistent := CheckPersistentAtomicity(models, h) == nil
		transient := CheckTransientAtomicity(models, h) == nil
		if strict {
			accepted[0]++
		}
		if persistent {
			accepted[1]++
		}
		if transient {
			accepted[2]++
		}
		if strict && !persistent {
			t.Fatalf("trial %d: strict but not persistent:\n%s", trial, h)
		}
		if persistent && !transient {
			t.Fatalf("trial %d: persistent but not transient:\n%s", trial, h)
		}
	}
	if accepted[0] == 0 || accepted[2] == accepted[0] {
		t.Logf("acceptance counts (strict/persistent/transient): %v", accepted)
	}
}
