package linearize

import (
	"math/rand"
	"testing"

	"nrl/internal/spec"
)

// bruteForce decides linearizability of a small opRec set by enumerating
// every subset of optional operations and every permutation, checking
// happens-before and the model directly. It is the oracle the WGL search
// is validated against.
func bruteForce(m spec.Model, ops []opRec) bool {
	var optional []int
	required := make([]int, 0, len(ops))
	for i := range ops {
		if ops[i].required {
			required = append(required, i)
		} else {
			optional = append(optional, i)
		}
	}
	// Every subset of the optional ops.
	for mask := 0; mask < 1<<len(optional); mask++ {
		chosen := append([]int(nil), required...)
		for b, idx := range optional {
			if mask&(1<<b) != 0 {
				chosen = append(chosen, idx)
			}
		}
		if permOK(m, ops, chosen, nil, make([]bool, len(ops))) {
			return true
		}
	}
	return false
}

// permOK recursively tries every permutation of chosen (minus the ones in
// used), extending prefix; it validates happens-before and responses as
// it goes.
func permOK(m spec.Model, ops []opRec, chosen []int, prefix []int, used []bool) bool {
	if len(prefix) == len(chosen) {
		return replay(m, ops, prefix)
	}
	for _, i := range chosen {
		if used[i] {
			continue
		}
		used[i] = true
		if permOK(m, ops, chosen, append(prefix, i), used) {
			used[i] = false
			return true
		}
		used[i] = false
	}
	return false
}

func replay(m spec.Model, ops []opRec, order []int) bool {
	// Happens-before: if res(a) < inv(b), a must come before b.
	pos := make(map[int]int, len(order))
	for idx, i := range order {
		pos[i] = idx
	}
	for _, a := range order {
		for _, b := range order {
			if ops[a].res < ops[b].inv && pos[a] > pos[b] {
				return false
			}
		}
	}
	// Also: an op with a deadline before another op's invocation cannot
	// appear after it even if... (covered above since res is the deadline).
	st := m.Init()
	for _, i := range order {
		st2, resp, err := m.Apply(st, ops[i].name, ops[i].args)
		if err != nil {
			return false
		}
		if ops[i].mustMatch && resp != ops[i].ret {
			return false
		}
		st = st2
	}
	return true
}

// genOps generates a random small operation set over a register with
// plausible (not necessarily valid) intervals and responses.
func genOps(rng *rand.Rand, n int) []opRec {
	ops := make([]opRec, 0, n)
	seq := int64(0)
	for i := 0; i < n; i++ {
		inv := seq
		seq++
		length := int64(rng.Intn(5))
		res := inv + 1 + length
		if res > seq {
			seq = res
		}
		r := opRec{id: int64(i + 1), inv: inv, res: res}
		if rng.Intn(2) == 0 {
			r.name = "WRITE"
			r.args = []uint64{uint64(rng.Intn(3) + 1)}
			r.ret = spec.Ack
		} else {
			r.name = "READ"
			r.ret = uint64(rng.Intn(4)) // may or may not be explainable
		}
		if rng.Intn(6) == 0 {
			// Pending: optional, unconstrained response, open deadline.
			r.res = seqInf
		} else {
			r.required = true
			r.mustMatch = true
		}
		ops = append(ops, r)
	}
	// Shuffle interval starts a bit so ops overlap in varied ways.
	rng.Shuffle(len(ops), func(i, j int) {
		ops[i].id, ops[j].id = ops[j].id, ops[i].id
	})
	return ops
}

// TestWGLAgreesWithBruteForce cross-checks the WGL search against the
// brute-force oracle on thousands of randomly generated small histories.
func TestWGLAgreesWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2018))
	m := spec.Register{}
	agreeYes, agreeNo := 0, 0
	for trial := 0; trial < 3000; trial++ {
		n := rng.Intn(6) + 1
		ops := genOps(rng, n)
		_, err := checkOps(m, ops, 0)
		got := err == nil
		want := bruteForce(m, ops)
		if got != want {
			t.Fatalf("trial %d: WGL says %v, oracle says %v\nops: %+v", trial, got, want, ops)
		}
		if got {
			agreeYes++
		} else {
			agreeNo++
		}
	}
	if agreeYes == 0 || agreeNo == 0 {
		t.Errorf("degenerate test distribution: %d accepted, %d rejected", agreeYes, agreeNo)
	}
	t.Logf("WGL and brute force agreed on all 3000 histories (%d linearizable, %d not)", agreeYes, agreeNo)
}

// TestWGLAgreesWithBruteForceDeadlines does the same with finite
// deadlines on optional operations (the strict/persistent atomicity
// mechanism).
func TestWGLAgreesWithBruteForceDeadlines(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	m := spec.Register{}
	mismatches := 0
	for trial := 0; trial < 3000; trial++ {
		n := rng.Intn(5) + 1
		ops := genOps(rng, n)
		// Give some optional ops a finite deadline (abort semantics).
		for i := range ops {
			if !ops[i].required && rng.Intn(2) == 0 {
				ops[i].res = ops[i].inv + int64(rng.Intn(4))
			}
		}
		_, err := checkOps(m, ops, 0)
		got := err == nil
		want := bruteForce(m, ops)
		if got != want {
			mismatches++
			t.Errorf("trial %d: WGL says %v, oracle says %v\nops: %+v", trial, got, want, ops)
			if mismatches > 3 {
				t.FailNow()
			}
		}
	}
}
