package history

import (
	"strings"
	"testing"
	"testing/quick"
)

// mk builds a step with the given fields.
func mk(k Kind, p int, obj, op string, opID int64) Step {
	return Step{Kind: k, Proc: p, Obj: obj, Op: op, OpID: opID}
}

// record appends the steps through a Recorder so they get sequence numbers.
func record(steps ...Step) History {
	r := NewRecorder()
	for _, s := range steps {
		r.Append(s)
	}
	return r.History()
}

func TestKindString(t *testing.T) {
	tests := []struct {
		give Kind
		want string
	}{
		{Inv, "INV"},
		{Res, "RES"},
		{Crash, "CRASH"},
		{Rec, "REC"},
		{Kind(99), "Kind(99)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("Kind.String() = %q, want %q", got, tt.want)
		}
	}
}

func TestStepString(t *testing.T) {
	s := Step{Kind: Inv, Proc: 1, Obj: "ctr", Op: "INC", Args: []uint64{3, 4}}
	if got := s.String(); got != "INV p1 ctr.INC(3,4)" {
		t.Errorf("Step.String() = %q", got)
	}
	s = Step{Kind: Res, Proc: 2, Obj: "ctr", Op: "READ", Ret: 7}
	if got := s.String(); got != "RES p2 ctr.READ -> 7" {
		t.Errorf("Step.String() = %q", got)
	}
	s = Step{Kind: Crash, Proc: 3, Obj: "reg", Op: "WRITE"}
	if got := s.String(); got != "CRASH p3 [in reg.WRITE]" {
		t.Errorf("Step.String() = %q", got)
	}
}

func TestRecorderSequencing(t *testing.T) {
	r := NewRecorder()
	id1 := r.NewOpID()
	id2 := r.NewOpID()
	if id1 == id2 {
		t.Fatal("NewOpID returned duplicate ids")
	}
	r.Append(mk(Inv, 1, "o", "OP", id1))
	r.Append(mk(Res, 1, "o", "OP", id1))
	h := r.History()
	if h.Len() != 2 {
		t.Fatalf("Len = %d, want 2", h.Len())
	}
	if h.Steps[0].Seq != 0 || h.Steps[1].Seq != 1 {
		t.Errorf("sequence numbers = %d,%d, want 0,1", h.Steps[0].Seq, h.Steps[1].Seq)
	}
	r.Reset()
	if r.History().Len() != 0 {
		t.Error("Reset did not clear steps")
	}
}

func TestSubhistories(t *testing.T) {
	h := record(
		mk(Inv, 1, "a", "W", 1),
		mk(Inv, 2, "b", "R", 2),
		mk(Res, 1, "a", "W", 1),
		mk(Crash, 2, "b", "R", 2),
		mk(Rec, 2, "b", "R", 2),
		mk(Res, 2, "b", "R", 2),
	)
	if got := h.ByProc(1).Len(); got != 2 {
		t.Errorf("ByProc(1).Len() = %d, want 2", got)
	}
	if got := h.ByObject("b").Len(); got != 4 {
		t.Errorf("ByObject(b).Len() = %d, want 4", got)
	}
	if got := h.NoCrash().Len(); got != 4 {
		t.Errorf("NoCrash().Len() = %d, want 4", got)
	}
	if h.CrashFree() {
		t.Error("CrashFree() = true for a history with a crash")
	}
	if !h.NoCrash().CrashFree() {
		t.Error("NoCrash result is not crash-free")
	}
	if got := h.Procs(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Procs() = %v, want [1 2]", got)
	}
	if got := h.Objects(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Objects() = %v, want [a b]", got)
	}
	if !strings.Contains(h.String(), "CRASH p2") {
		t.Errorf("History.String() missing crash line:\n%s", h.String())
	}
}

func TestCheckWellFormedAcceptsNested(t *testing.T) {
	// p1: INC on ctr invokes WRITE on reg; proper nesting.
	h := record(
		mk(Inv, 1, "ctr", "INC", 1),
		mk(Inv, 1, "reg", "WRITE", 2),
		mk(Res, 1, "reg", "WRITE", 2),
		mk(Res, 1, "ctr", "INC", 1),
	)
	if err := h.CheckWellFormed(); err != nil {
		t.Errorf("CheckWellFormed() = %v, want nil", err)
	}
}

func TestCheckWellFormedRejects(t *testing.T) {
	tests := []struct {
		name string
		h    History
	}{
		{
			name: "response without invocation",
			h:    record(mk(Res, 1, "a", "W", 1)),
		},
		{
			name: "double pending on one object",
			h: record(
				mk(Inv, 1, "a", "W", 1),
				mk(Inv, 1, "a", "R", 2),
			),
		},
		{
			name: "mismatched response",
			h: record(
				mk(Inv, 1, "a", "W", 1),
				mk(Res, 1, "a", "W", 99),
			),
		},
		{
			name: "nesting violated (parent returns before child)",
			h: record(
				mk(Inv, 1, "ctr", "INC", 1),
				mk(Inv, 1, "reg", "WRITE", 2),
				mk(Res, 1, "ctr", "INC", 1),
				mk(Res, 1, "reg", "WRITE", 2),
			),
		},
		{
			name: "crash step present",
			h:    record(mk(Crash, 1, "a", "W", 1)),
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.h.CheckWellFormed(); err == nil {
				t.Error("CheckWellFormed() = nil, want error")
			}
		})
	}
}

func TestCheckRecoverableWellFormed(t *testing.T) {
	good := record(
		mk(Inv, 1, "a", "W", 1),
		mk(Crash, 1, "a", "W", 1),
		mk(Rec, 1, "a", "W", 1),
		mk(Crash, 1, "a", "W", 1), // crash during recovery
		mk(Rec, 1, "a", "W", 1),
		mk(Res, 1, "a", "W", 1),
	)
	if err := good.CheckRecoverableWellFormed(); err != nil {
		t.Errorf("CheckRecoverableWellFormed() = %v, want nil", err)
	}

	// A crash as the process's last step is allowed.
	tail := record(
		mk(Inv, 1, "a", "W", 1),
		mk(Crash, 1, "a", "W", 1),
	)
	if err := tail.CheckRecoverableWellFormed(); err != nil {
		t.Errorf("crash-as-last-step: %v, want nil", err)
	}

	bad := []struct {
		name string
		h    History
	}{
		{
			name: "step after crash without recover",
			h: record(
				mk(Inv, 1, "a", "W", 1),
				mk(Crash, 1, "a", "W", 1),
				mk(Res, 1, "a", "W", 1),
			),
		},
		{
			name: "recover without crash",
			h: record(
				mk(Inv, 1, "a", "W", 1),
				mk(Rec, 1, "a", "W", 1),
			),
		},
		{
			name: "recover for wrong operation",
			h: record(
				mk(Inv, 1, "a", "W", 1),
				mk(Crash, 1, "a", "W", 1),
				mk(Rec, 1, "a", "W", 42),
			),
		},
	}
	for _, tt := range bad {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.h.CheckRecoverableWellFormed(); err == nil {
				t.Error("CheckRecoverableWellFormed() = nil, want error")
			}
		})
	}
}

func TestOps(t *testing.T) {
	h := record(
		mk(Inv, 1, "a", "W", 1),
		mk(Inv, 2, "a", "R", 2),
		mk(Res, 1, "a", "W", 1),
	)
	ops := h.Ops()
	if len(ops) != 2 {
		t.Fatalf("Ops() returned %d ops, want 2", len(ops))
	}
	if !ops[0].Completed() {
		t.Error("op 1 should be completed")
	}
	if ops[1].Completed() {
		t.Error("op 2 should be pending")
	}
}

// TestQuickNoCrashIdempotent checks N(N(H)) == N(H) and that N(H) never
// contains crash steps, for arbitrary generated histories.
func TestQuickNoCrashIdempotent(t *testing.T) {
	f := func(kinds []byte, procs []byte) bool {
		r := NewRecorder()
		n := len(kinds)
		if len(procs) < n {
			n = len(procs)
		}
		for i := 0; i < n; i++ {
			k := Kind(int(kinds[i])%4 + 1)
			r.Append(Step{Kind: k, Proc: int(procs[i]) % 3, Obj: "o", Op: "OP", OpID: int64(i)})
		}
		h := r.History()
		n1 := h.NoCrash()
		if !n1.CrashFree() {
			return false
		}
		n2 := n1.NoCrash()
		if len(n1.Steps) != len(n2.Steps) {
			return false
		}
		for i := range n1.Steps {
			if n1.Steps[i].Seq != n2.Steps[i].Seq || n1.Steps[i].Kind != n2.Steps[i].Kind {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGantt(t *testing.T) {
	h := record(
		mk(Inv, 1, "ctr", "INC", 1),
		mk(Inv, 2, "ctr", "INC", 2),
		mk(Crash, 1, "ctr", "INC", 1),
		mk(Rec, 1, "ctr", "INC", 1),
		mk(Res, 2, "ctr", "INC", 2),
		mk(Res, 1, "ctr", "INC", 1),
		mk(Inv, 2, "ctr", "READ", 3),
	)
	out := h.Gantt(40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("Gantt produced %d rows, want 3:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "p1 ctr.INC") || !strings.Contains(lines[0], "C") ||
		!strings.Contains(lines[0], "r") || !strings.Contains(lines[0], "-> 0") {
		t.Errorf("row 0 = %q", lines[0])
	}
	if !strings.Contains(lines[2], "(pending)") || !strings.Contains(lines[2], ">") {
		t.Errorf("pending row = %q", lines[2])
	}
	if got := (History{}).Gantt(0); !strings.Contains(got, "empty") {
		t.Errorf("empty Gantt = %q", got)
	}
	// Tiny widths are clamped, single-step histories don't divide by zero.
	one := record(mk(Inv, 1, "x", "OP", 1))
	if out := one.Gantt(1); out == "" {
		t.Error("Gantt(1) empty")
	}
}
