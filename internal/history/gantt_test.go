package history

import (
	"strings"
	"testing"
)

func TestGanttEmptyHistory(t *testing.T) {
	got := History{}.Gantt(40)
	if got != "(empty history)\n" {
		t.Errorf("Gantt(empty) = %q", got)
	}
}

func TestGanttCompletedOp(t *testing.T) {
	h := History{Steps: []Step{
		{Kind: Inv, Proc: 1, Obj: "ctr", Op: "INC", OpID: 1, Seq: 0},
		{Kind: Res, Proc: 1, Obj: "ctr", Op: "INC", OpID: 1, Ret: 7, Seq: 3},
	}}
	got := h.Gantt(24)
	if !strings.Contains(got, "p1 ctr.INC") {
		t.Errorf("missing label:\n%s", got)
	}
	if !strings.Contains(got, "[") || !strings.Contains(got, "]") {
		t.Errorf("bar not closed:\n%s", got)
	}
	if !strings.Contains(got, "-> 7") {
		t.Errorf("missing response value:\n%s", got)
	}
}

func TestGanttPendingOp(t *testing.T) {
	h := History{Steps: []Step{
		{Kind: Inv, Proc: 1, Obj: "ctr", Op: "INC", OpID: 1, Seq: 0},
		{Kind: Inv, Proc: 2, Obj: "ctr", Op: "INC", OpID: 2, Seq: 1},
		{Kind: Res, Proc: 2, Obj: "ctr", Op: "INC", OpID: 2, Ret: 1, Seq: 2},
	}}
	got := h.Gantt(24)
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 rows, got %d:\n%s", len(lines), got)
	}
	if !strings.Contains(lines[0], ">") || !strings.Contains(lines[0], "(pending)") {
		t.Errorf("pending op not rendered with '>' and (pending):\n%s", got)
	}
	if !strings.Contains(lines[1], "-> 1") {
		t.Errorf("completed op missing response:\n%s", got)
	}
}

// A crash before any response, with recovery completing the op: the bar
// must carry the C and r markers inside its span.
func TestGanttCrashAndRecoverMarkers(t *testing.T) {
	h := History{Steps: []Step{
		{Kind: Inv, Proc: 1, Obj: "tas", Op: "T&S", OpID: 1, Seq: 0},
		{Kind: Crash, Proc: 1, Obj: "tas", Op: "T&S", OpID: 1, Seq: 4},
		{Kind: Rec, Proc: 1, Obj: "tas", Op: "T&S", OpID: 1, Seq: 6},
		{Kind: Res, Proc: 1, Obj: "tas", Op: "T&S", OpID: 1, Ret: 0, Seq: 9},
	}}
	got := h.Gantt(40)
	if !strings.Contains(got, "C") {
		t.Errorf("missing crash marker:\n%s", got)
	}
	if !strings.Contains(got, "r") && !strings.Contains(got, " r") {
		t.Errorf("missing recover marker:\n%s", got)
	}
	bar := got[strings.Index(got, "["):strings.Index(got, "]")]
	if !strings.Contains(bar, "C") {
		t.Errorf("crash marker outside the bar:\n%s", got)
	}
}

// A crash-only history: the op never completes, and the crash marker must
// be clamped into the pending bar.
func TestGanttCrashOnlyPending(t *testing.T) {
	h := History{Steps: []Step{
		{Kind: Inv, Proc: 1, Obj: "ctr", Op: "INC", OpID: 1, Seq: 0},
		{Kind: Crash, Proc: 1, Obj: "ctr", Op: "INC", OpID: 1, Seq: 2},
	}}
	got := h.Gantt(30)
	if !strings.Contains(got, "C") || !strings.Contains(got, "(pending)") {
		t.Errorf("crash-only op not rendered as pending with marker:\n%s", got)
	}
}

// Nested operations share a process: both rows must render, inner within
// outer on the sequence axis.
func TestGanttNestedOps(t *testing.T) {
	h := History{Steps: []Step{
		{Kind: Inv, Proc: 1, Obj: "ctr", Op: "INC", OpID: 1, Seq: 0},
		{Kind: Inv, Proc: 1, Obj: "ctr.R[1]", Op: "WRITE", OpID: 2, Seq: 1},
		{Kind: Res, Proc: 1, Obj: "ctr.R[1]", Op: "WRITE", OpID: 2, Seq: 2},
		{Kind: Res, Proc: 1, Obj: "ctr", Op: "INC", OpID: 1, Seq: 3},
	}}
	got := h.Gantt(40)
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 rows (outer + nested), got %d:\n%s", len(lines), got)
	}
	if !strings.Contains(lines[0], "ctr.INC") || !strings.Contains(lines[1], "ctr.R[1].WRITE") {
		t.Errorf("rows not in invocation order:\n%s", got)
	}
	// The nested object's label itself contains '[' ("ctr.R[1]"), so find
	// the bar via the space that precedes it.
	outerStart := strings.Index(lines[0], " [") + 1
	innerStart := strings.Index(lines[1], " [") + 1
	if innerStart <= outerStart {
		t.Errorf("nested op does not start after its parent:\n%s", got)
	}
}

// Width handling: 0 selects the default of 64 columns, small values clamp
// to 20. Measured via the bar of a single op spanning the whole axis.
func TestGanttWidthClamping(t *testing.T) {
	h := History{Steps: []Step{
		{Kind: Inv, Proc: 1, Obj: "o", Op: "OP", OpID: 1, Seq: 0},
		{Kind: Res, Proc: 1, Obj: "o", Op: "OP", OpID: 1, Seq: 1},
	}}
	barLen := func(width int) int {
		line := strings.TrimRight(h.Gantt(width), "\n")
		return strings.Index(line, "]") - strings.Index(line, "[") + 1
	}
	if got := barLen(0); got != 64 {
		t.Errorf("width 0: bar spans %d columns, want 64", got)
	}
	if got := barLen(5); got != 20 {
		t.Errorf("width 5: bar spans %d columns, want 20 (clamped)", got)
	}
	if got := barLen(30); got != 30 {
		t.Errorf("width 30: bar spans %d columns, want 30", got)
	}
}

// All steps at the same sequence number (maxSeq == 0): scale must not
// divide by zero.
func TestGanttZeroSpan(t *testing.T) {
	h := History{Steps: []Step{
		{Kind: Inv, Proc: 1, Obj: "o", Op: "OP", OpID: 1, Seq: 0},
		{Kind: Res, Proc: 1, Obj: "o", Op: "OP", OpID: 1, Seq: 0},
	}}
	got := h.Gantt(20)
	if !strings.Contains(got, "p1 o.OP") {
		t.Errorf("zero-span history not rendered:\n%s", got)
	}
}
