// Package history records and transforms operation histories of the
// crash-recovery model of Attiya, Ben-Baruch and Hendler (PODC 2018).
//
// A history is a sequence of steps of four kinds: invocation (INV),
// response (RES), crash (CRASH) and recovery (REC). The package implements
// the paper's history transformations and predicates: per-object and
// per-process subhistories, the crash-free projection N(H) (Definition 3),
// crash-free well-formedness, and recoverable well-formedness
// (Definition 3). The linearizability side of Definition 4 lives in package
// linearize.
package history

import (
	"fmt"
	"strings"
	"sync"
)

// Kind discriminates the four step kinds of the model.
type Kind int

const (
	// Inv is an invocation step (INV, p, O, Op).
	Inv Kind = iota + 1
	// Res is a response step (RES, p, O, Op, ret).
	Res
	// Crash is a crash step (CRASH, p); the step also records the crashed
	// operation (the inner-most pending recoverable operation of p).
	Crash
	// Rec is a recovery step (REC, p), the resurrection of p by the system.
	Rec
)

// String returns the paper's name for the step kind.
func (k Kind) String() string {
	switch k {
	case Inv:
		return "INV"
	case Res:
		return "RES"
	case Crash:
		return "CRASH"
	case Rec:
		return "REC"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Step is one step of a history.
type Step struct {
	Kind Kind
	Proc int    // process id, 1-based
	Obj  string // object the step concerns; for Crash/Rec, the crashed operation's object
	Op   string // operation name; for Crash/Rec, the crashed operation's name
	Args []uint64
	Ret  uint64
	// OpID links an Inv step with its matching Res step, and a Crash/Rec
	// step with the crashed operation's Inv step. OpIDs are unique per
	// recorder.
	OpID int64
	// Seq is the global sequence number assigned by the recorder.
	Seq int64
}

// String renders the step compactly, e.g. "INV p1 ctr.INC(3)".
func (s Step) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s p%d", s.Kind, s.Proc)
	switch s.Kind {
	case Inv:
		fmt.Fprintf(&b, " %s.%s(%s)", s.Obj, s.Op, joinArgs(s.Args))
	case Res:
		fmt.Fprintf(&b, " %s.%s -> %d", s.Obj, s.Op, s.Ret)
	case Crash, Rec:
		fmt.Fprintf(&b, " [in %s.%s]", s.Obj, s.Op)
	}
	return b.String()
}

func joinArgs(args []uint64) string {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = fmt.Sprint(a)
	}
	return strings.Join(parts, ",")
}

// History is a finite sequence of steps.
type History struct {
	Steps []Step
}

// String renders the history one step per line.
func (h History) String() string {
	var b strings.Builder
	for _, s := range h.Steps {
		b.WriteString(s.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Len returns the number of steps.
func (h History) Len() int { return len(h.Steps) }

// ByProc returns H|p: the subhistory of all steps by process p.
func (h History) ByProc(p int) History {
	var out History
	for _, s := range h.Steps {
		if s.Proc == p {
			out.Steps = append(out.Steps, s)
		}
	}
	return out
}

// ByObject returns H|O: all invocation and response steps on object obj, as
// well as any crash step whose crashed operation is on obj together with
// its matching recover step.
func (h History) ByObject(obj string) History {
	var out History
	for _, s := range h.Steps {
		if s.Obj == obj {
			out.Steps = append(out.Steps, s)
		}
	}
	return out
}

// Procs returns the sorted-by-first-appearance list of process ids in h.
func (h History) Procs() []int {
	seen := make(map[int]bool)
	var out []int
	for _, s := range h.Steps {
		if !seen[s.Proc] {
			seen[s.Proc] = true
			out = append(out, s.Proc)
		}
	}
	return out
}

// Objects returns the list of object names in h, in order of first
// appearance.
func (h History) Objects() []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range h.Steps {
		if s.Obj != "" && !seen[s.Obj] {
			seen[s.Obj] = true
			out = append(out, s.Obj)
		}
	}
	return out
}

// NoCrash returns N(H): the history obtained from h by removing all crash
// and recovery steps.
func (h History) NoCrash() History {
	var out History
	for _, s := range h.Steps {
		if s.Kind == Inv || s.Kind == Res {
			out.Steps = append(out.Steps, s)
		}
	}
	return out
}

// CrashFree reports whether h contains no crash (hence no recovery) steps.
func (h History) CrashFree() bool {
	for _, s := range h.Steps {
		if s.Kind == Crash || s.Kind == Rec {
			return false
		}
	}
	return true
}

// Recorder collects steps concurrently. The zero value is not usable; use
// NewRecorder.
type Recorder struct {
	mu     sync.Mutex
	steps  []Step
	nextOp int64
	seq    int64
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{nextOp: 1}
}

// NewOpID allocates a fresh operation identifier.
func (r *Recorder) NewOpID() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := r.nextOp
	r.nextOp++
	return id
}

// Append records a step, assigning it the next sequence number. The
// step's Args slice is copied: emitters (the proc layer's frame arena)
// reuse the backing storage across invocations, so the recorder owns an
// immutable snapshot rather than an alias into live frames.
func (r *Recorder) Append(s Step) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s.Seq = r.seq
	r.seq++
	if len(s.Args) > 0 {
		s.Args = append([]uint64(nil), s.Args...)
	}
	r.steps = append(r.steps, s)
}

// History returns a copy of the recorded history so far.
func (r *Recorder) History() History {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Step, len(r.steps))
	copy(out, r.steps)
	return History{Steps: out}
}

// Reset discards all recorded steps (operation ids keep increasing).
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.steps = nil
	r.seq = 0
}
