package history

import (
	"fmt"
	"sort"
	"strings"
)

// Gantt renders the history as an ASCII timeline: one row per operation,
// a bar spanning the operation's interval on a sequence-number axis, with
// 'C' marking crash steps and 'r' marking recover steps attributed to the
// operation. Pending operations end with '>'. width is the number of
// axis columns (minimum 20; 0 selects 64).
//
//	p1 ctr.INC      [==C=r=======]            -> 0
//	p2 ctr.INC           [=========]          -> 0
func (h History) Gantt(width int) string {
	if width <= 0 {
		width = 64
	}
	if width < 20 {
		width = 20
	}
	if len(h.Steps) == 0 {
		return "(empty history)\n"
	}
	maxSeq := h.Steps[len(h.Steps)-1].Seq
	scale := func(seq int64) int {
		if maxSeq == 0 {
			return 0
		}
		p := int(seq * int64(width-1) / maxSeq)
		if p >= width {
			p = width - 1
		}
		return p
	}

	type row struct {
		label   string
		inv     int64
		res     int64 // -1 if pending
		ret     uint64
		crashes []int64
		recs    []int64
	}
	byID := make(map[int64]*row)
	var rows []*row
	for _, s := range h.Steps {
		switch s.Kind {
		case Inv:
			r := &row{
				label: fmt.Sprintf("p%d %s.%s", s.Proc, s.Obj, s.Op),
				inv:   s.Seq,
				res:   -1,
			}
			byID[s.OpID] = r
			rows = append(rows, r)
		case Res:
			if r, ok := byID[s.OpID]; ok {
				r.res = s.Seq
				r.ret = s.Ret
			}
		case Crash:
			if r, ok := byID[s.OpID]; ok {
				r.crashes = append(r.crashes, s.Seq)
			}
		case Rec:
			if r, ok := byID[s.OpID]; ok {
				r.recs = append(r.recs, s.Seq)
			}
		}
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].inv < rows[j].inv })

	labelW := 0
	for _, r := range rows {
		if len(r.label) > labelW {
			labelW = len(r.label)
		}
	}
	var b strings.Builder
	for _, r := range rows {
		bar := make([]byte, width)
		for i := range bar {
			bar[i] = ' '
		}
		start := scale(r.inv)
		end := width - 1
		pending := r.res < 0
		if !pending {
			end = scale(r.res)
		}
		for i := start; i <= end; i++ {
			bar[i] = '='
		}
		bar[start] = '['
		if pending {
			bar[end] = '>'
		} else {
			bar[end] = ']'
		}
		for _, seq := range r.crashes {
			bar[clamp(scale(seq), start, end)] = 'C'
		}
		for _, seq := range r.recs {
			bar[clamp(scale(seq), start, end)] = 'r'
		}
		fmt.Fprintf(&b, "%-*s %s", labelW, r.label, string(bar))
		if pending {
			fmt.Fprintf(&b, " (pending)")
		} else {
			fmt.Fprintf(&b, " -> %d", r.ret)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
