package history

import "fmt"

// CheckWellFormed verifies the paper's crash-free well-formedness of h:
//
//  1. for every object O, H|O is well-formed: for all processes p, H|<p,O>
//     is a sequence of alternating, matching invocation and response steps,
//     starting with an invocation; and
//  2. for every process p, operations of p are properly nested: if i1, r1
//     and i2, r2 are matching invocation/response pairs in H|p and
//     i1 < i2 < r1, then r2 < r1.
//
// h must be crash-free; CheckWellFormed returns an error if it is not.
func (h History) CheckWellFormed() error {
	if !h.CrashFree() {
		return fmt.Errorf("history contains crash/recovery steps; apply NoCrash first or use CheckRecoverableWellFormed")
	}
	// Condition 1: per (process, object) alternation with matching ops.
	type key struct {
		p   int
		obj string
	}
	pendingPO := make(map[key]*Step)
	// Condition 2: per-process stack of pending operations (nesting).
	stacks := make(map[int][]int64)
	for i := range h.Steps {
		s := &h.Steps[i]
		k := key{s.Proc, s.Obj}
		switch s.Kind {
		case Inv:
			if prev := pendingPO[k]; prev != nil {
				return fmt.Errorf("step %d (%s): process %d invokes %s.%s while %s.%s is pending on the same object",
					s.Seq, s, s.Proc, s.Obj, s.Op, prev.Obj, prev.Op)
			}
			pendingPO[k] = s
			stacks[s.Proc] = append(stacks[s.Proc], s.OpID)
		case Res:
			prev := pendingPO[k]
			if prev == nil {
				return fmt.Errorf("step %d (%s): response without pending invocation", s.Seq, s)
			}
			if prev.OpID != s.OpID || prev.Op != s.Op {
				return fmt.Errorf("step %d (%s): response does not match pending invocation %s", s.Seq, s, prev)
			}
			pendingPO[k] = nil
			st := stacks[s.Proc]
			if len(st) == 0 || st[len(st)-1] != s.OpID {
				return fmt.Errorf("step %d (%s): response violates nesting (LIFO) order of process %d", s.Seq, s, s.Proc)
			}
			stacks[s.Proc] = st[:len(st)-1]
		default:
			return fmt.Errorf("step %d (%s): unexpected kind in crash-free history", s.Seq, s)
		}
	}
	return nil
}

// CheckRecoverableWellFormed verifies Definition 3 (recoverable
// well-formedness):
//
//  1. every crash step of process p is either p's last step in h or is
//     followed in H|p by a matching recover step of p; and
//  2. N(h) is well-formed.
func (h History) CheckRecoverableWellFormed() error {
	// Condition 1.
	lastCrash := make(map[int]*Step) // pending (unmatched) crash per process
	for i := range h.Steps {
		s := &h.Steps[i]
		if c := lastCrash[s.Proc]; c != nil {
			if s.Kind != Rec {
				return fmt.Errorf("step %d (%s): process %d took a step after a crash without a recover step", s.Seq, s, s.Proc)
			}
			if s.OpID != c.OpID {
				return fmt.Errorf("step %d (%s): recover step does not match crashed operation of %s", s.Seq, s, c)
			}
			lastCrash[s.Proc] = nil
			continue
		}
		switch s.Kind {
		case Crash:
			lastCrash[s.Proc] = s
		case Rec:
			return fmt.Errorf("step %d (%s): recover step without preceding crash", s.Seq, s)
		}
	}
	// Condition 2.
	if err := h.NoCrash().CheckWellFormed(); err != nil {
		return fmt.Errorf("N(H) is not well-formed: %w", err)
	}
	return nil
}

// OpInterval describes one operation occurrence in a history: its
// invocation step and, if completed, its response step.
type OpInterval struct {
	Inv *Step
	Res *Step // nil if the operation is pending at the end of the history
}

// Completed reports whether the operation has a response.
func (o OpInterval) Completed() bool { return o.Res != nil }

// Ops extracts the operations of h in invocation order. h should be a
// crash-free history (apply NoCrash first for recoverable histories).
func (h History) Ops() []OpInterval {
	byID := make(map[int64]int)
	var out []OpInterval
	for i := range h.Steps {
		s := &h.Steps[i]
		switch s.Kind {
		case Inv:
			byID[s.OpID] = len(out)
			out = append(out, OpInterval{Inv: s})
		case Res:
			if idx, ok := byID[s.OpID]; ok {
				out[idx].Res = s
			}
		}
	}
	return out
}
