package replica

import (
	"fmt"
	"sort"

	"nrl/internal/nvm"
	"nrl/internal/persist"
)

// promoteLocked replaces a degraded leader with the follower holding
// the longest durable prefix. On return with nil the Set has a serving
// leader under a strictly higher epoch, durable on the new leader and
// stamped on every surviving mirror, with the allocation shadow
// replayed — ready for the interrupted batch to reapply.
func (s *Set) promoteLocked() error {
	if ph := s.opts.Persist.PhaseHook; ph != nil {
		ph(nvm.PhaseFailover)
	}
	s.leader.Close()
	oldDir := s.leaderDir

	// Rank candidates by durable credentials: attached mirrors by their
	// live position, faulted directories by a read-only scan.
	type cand struct {
		f             *follower
		epoch, prefix uint64
	}
	var cands []cand
	for _, f := range s.followers {
		if f.mirror != nil {
			cands = append(cands, cand{f, f.mirror.Epoch(), f.mirror.Seq()})
		} else if rep, err := persist.ScanDir(f.dir); err == nil {
			cands = append(cands, cand{f, rep.Epoch, rep.Prefix})
		}
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].epoch != cands[j].epoch {
			return cands[i].epoch > cands[j].epoch
		}
		return cands[i].prefix > cands[j].prefix
	})

	for _, c := range cands {
		f := c.f
		if f.mirror != nil {
			f.mirror.Close()
			f.mirror = nil
		}
		nl, err := s.openLeader(f.dir)
		if err != nil {
			s.backoffLocked(f)
			continue
		}
		// The new epoch must be durable on the new leader before any
		// record commits under it: once it is, no stale peer — the
		// demoted leader included — can outrank this history in a
		// future election, which is what makes acking under the new
		// epoch safe.
		newEpoch := s.epoch + 1
		if nl.Epoch() >= newEpoch {
			newEpoch = nl.Epoch() + 1
		}
		if err := nl.SetEpoch(newEpoch); err != nil {
			nl.Close()
			s.backoffLocked(f)
			continue
		}

		// The promoted directory takes leadership; the demoted leader's
		// directory takes the vacated follower slot, faulted, eligible
		// for healing at the next commit (its stale-epoch tail will be
		// wiped by the snapshot install catch-up).
		s.leader = nl
		s.leaderDir = f.dir
		f.dir = oldDir
		f.healthy = false
		f.durable = 0
		f.fails = 0
		f.nextHeal = s.commits
		s.epoch = newEpoch
		s.promotions++

		// Stamp the epoch on every surviving mirror and re-align it
		// with the new leader, so the quorum counted at the next ack is
		// a quorum of the new epoch.
		for _, g := range s.followers {
			if g == f || !g.healthy || g.mirror == nil {
				continue
			}
			if err := g.mirror.SetEpoch(newEpoch); err != nil {
				s.faultLocked(g)
				continue
			}
			if err := s.catchUpLocked(g); err != nil {
				s.faultLocked(g)
			}
		}

		// Replay the allocation shadow: words grown but never committed
		// exist in no durable page, so the new leader's image must
		// cover them before the in-flight batch reapplies and persists
		// their pages.
		for a, init := range s.grows {
			if _, ok := nl.Recovered(a); !ok {
				nl.Grow(a, init)
			}
		}
		// The flight recorder moved homes with the leadership: mark the
		// whole ring dirty so the next commit rewrites it into the new
		// leader's region file.
		if rs, ok := s.box.(interface{ Resync() }); ok {
			rs.Resync()
		}
		return nil
	}
	return fmt.Errorf("replica: no promotable follower among %d", len(s.followers))
}
