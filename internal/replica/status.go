package replica

import "nrl/internal/persist"

// MemberStatus describes one replica directory's current standing.
type MemberStatus struct {
	// Dir is the member's store directory.
	Dir string `json:"dir"`
	// Role is "leader", "follower", or "faulted" (a follower whose
	// mirror is detached pending heal).
	Role string `json:"role"`
	// Seq is the member's durable prefix; Epoch the epoch it last
	// accepted. For faulted members both come from a read-only scan.
	Seq   uint64 `json:"seq"`
	Epoch uint64 `json:"epoch"`
	// Healthy reports the member is attached and serving.
	Healthy bool `json:"healthy"`
}

// Status is a point-in-time snapshot of the set, JSON-ready for the
// nrlrepl CLI.
type Status struct {
	// Epoch is the current replication epoch; Quorum the majority
	// threshold.
	Epoch  uint64 `json:"epoch"`
	Quorum int    `json:"quorum"`
	// Commits, Promotions and Heals are lifetime totals: acknowledged
	// set commits, leader failovers, and followers healed back in.
	Commits    uint64 `json:"commits"`
	Promotions uint64 `json:"promotions"`
	Heals      uint64 `json:"heals"`
	// Degraded carries the sticky set-level error, empty while serving.
	Degraded string `json:"degraded,omitempty"`
	// Members lists every replica, leader first.
	Members []MemberStatus `json:"members"`
}

// Status reports the set's current standing.
func (s *Set) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Status{
		Epoch:      s.epoch,
		Quorum:     s.quorum,
		Commits:    s.commits,
		Promotions: s.promotions,
		Heals:      s.heals,
	}
	if s.degraded != nil {
		st.Degraded = s.degraded.Error()
	}
	st.Members = append(st.Members, MemberStatus{
		Dir:     s.leaderDir,
		Role:    "leader",
		Seq:     s.leader.Seq(),
		Epoch:   s.leader.Epoch(),
		Healthy: s.leader.Err() == nil,
	})
	for _, f := range s.followers {
		ms := MemberStatus{Dir: f.dir, Role: "follower", Healthy: f.healthy}
		if f.mirror != nil {
			ms.Seq = f.mirror.Seq()
			ms.Epoch = f.mirror.Epoch()
		} else {
			ms.Role = "faulted"
			if rep, err := persist.ScanDir(f.dir); err == nil {
				ms.Seq = rep.Prefix
				ms.Epoch = rep.Epoch
			}
		}
		st.Members = append(st.Members, ms)
	}
	return st
}
