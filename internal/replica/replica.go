package replica

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"nrl/internal/nvm"
	"nrl/internal/persist"
	"nrl/internal/vclock"
)

// ErrNoQuorum reports that fewer than a majority of the replica
// directories hold the latest commit durably and none of the faulted
// ones could be healed in time. The Set degrades sticky (the error is
// wrapped in *nvm.DegradedError); acknowledged operations remain
// durable on the members that have them.
var ErrNoQuorum = errors.New("replica: quorum unavailable")

// Options configures a replica Set.
type Options struct {
	// Dirs are the replica store directories, created if absent. The
	// quorum is a majority: len(Dirs)/2 + 1, leader included. One
	// directory degenerates to an unreplicated store.
	Dirs []string
	// Persist is the store configuration template applied to every
	// member. Its Shipper and BlackBox fields are owned by the Set
	// (Shipper is replaced by the internal fan-out; BlackBox is
	// attached to the leader only); its Inject hook is superseded by
	// InjectFor when that is set.
	Persist persist.Options
	// InjectFor, when non-nil, supplies the failpoint hook for the
	// replica directory at index i of Dirs. Faults follow the
	// directory, not the role: a directory keeps its hook as leadership
	// moves.
	InjectFor func(i int) func(op string) error
	// ShipRetries is how many times a failed ship operation to one
	// follower is retried beyond the first attempt before the follower
	// is marked faulted (default 2; negative for none).
	ShipRetries int
	// ShipBaseDelay and ShipMaxDelay bound the jittered exponential
	// backoff between ship retries (defaults 1ms and 50ms).
	ShipBaseDelay time.Duration
	ShipMaxDelay  time.Duration
	// Seed seeds the jitter source, making retry and heal schedules
	// reproducible.
	Seed int64
	// Source, when non-nil, replaces the Seed-derived jitter stream
	// outright: ship-retry spreading and heal-backoff jitter draw from
	// it and nothing else, so a campaign can hand every Set a stream
	// split from its own master seed (vclock.NewRand / proc.SplitSeed)
	// and replay heal timing bit-for-bit.
	Source rand.Source
	// Sleep, when non-nil, replaces the sleeper used between ship
	// retries (default: Persist.Sleep, else the wall clock). A virtual
	// clock's Sleep makes retry backoff free and deterministic under
	// test; heal backoff needs no sleeper at all — it is measured in
	// commits by design.
	Sleep func(time.Duration)
}

func (o Options) withDefaults() Options {
	if o.ShipRetries == 0 {
		o.ShipRetries = 2
	}
	if o.ShipRetries < 0 {
		o.ShipRetries = 0
	}
	if o.ShipBaseDelay <= 0 {
		o.ShipBaseDelay = time.Millisecond
	}
	if o.ShipMaxDelay <= 0 {
		o.ShipMaxDelay = 50 * time.Millisecond
	}
	return o
}

// follower is one non-leader member: its directory, its mirror handle
// while attached, and the fault/heal bookkeeping.
type follower struct {
	dir     string
	mirror  *persist.Mirror // nil while faulted
	healthy bool
	durable uint64 // highest sequence fenced on this follower
	fails   int    // consecutive attach/ship failures
	// nextHeal is the Set commit count at which the next heal attempt
	// is due — backoff is measured in commits, not wall time, so it is
	// deterministic under test.
	nextHeal uint64
}

// Set is a replicated nvm.Backend over Options.Dirs. Install it with
// nvm.WithBackend exactly like a single persist.File.
type Set struct {
	opts   Options
	quorum int
	dirIdx map[string]int // original index of each directory in Options.Dirs
	sleep  func(time.Duration)
	box    persist.BlackBox // caller's recorder, for post-failover Resync
	live   *liveBox

	mu        sync.Mutex
	leader    *persist.File
	leaderDir string
	followers []*follower
	epoch     uint64
	rng       *vclock.Rand
	// grows shadows every Grow since Open: words allocated above but
	// not yet committed exist in no durable page, so a promoted leader
	// must have them replayed before the in-flight batch lands.
	grows       map[nvm.Addr]uint64
	snapPending bool // a leader checkpoint awaits distribution
	commits     uint64
	promotions  uint64
	heals       uint64
	degraded    error
}

// Open opens (creating as needed) every replica directory, elects the
// one with the highest (epoch, durable prefix) as leader, and attaches
// the rest as followers caught up to the leader's state. A directory
// whose store is too damaged to recover is skipped for leadership and
// healed back in as a follower; Open fails only if no directory
// recovers at all.
func Open(opts Options) (*Set, error) {
	opts = opts.withDefaults()
	if len(opts.Dirs) == 0 {
		return nil, errors.New("replica: no directories")
	}
	s := &Set{
		opts:   opts,
		quorum: len(opts.Dirs)/2 + 1,
		dirIdx: make(map[string]int, len(opts.Dirs)),
		grows:  make(map[nvm.Addr]uint64),
	}
	// Jitter stream: an injected Source wins; otherwise stream 1 of the
	// Set's seed (stream 0 is reserved for a campaign's own choices).
	if opts.Source != nil {
		s.rng = vclock.FromSource(opts.Source)
	} else {
		s.rng = vclock.NewRand(opts.Seed, 1)
	}
	s.sleep = opts.Sleep
	if s.sleep == nil {
		s.sleep = opts.Persist.Sleep
	}
	if s.sleep == nil {
		s.sleep = vclock.WallSleep
	}
	for i, d := range opts.Dirs {
		if _, dup := s.dirIdx[d]; dup {
			return nil, fmt.Errorf("replica: duplicate directory %s", d)
		}
		s.dirIdx[d] = i
	}
	if opts.Persist.BlackBox != nil {
		s.box = opts.Persist.BlackBox
		s.live = &liveBox{inner: s.box}
	}

	// Election: rank every directory by its durable credentials, then
	// open the best one that actually recovers.
	type cand struct {
		dir           string
		epoch, prefix uint64
		idx           int
	}
	cands := make([]cand, 0, len(opts.Dirs))
	for i, d := range opts.Dirs {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("replica: %w", err)
		}
		rep, err := persist.ScanDir(d)
		if err != nil {
			return nil, fmt.Errorf("replica: %w", err)
		}
		cands = append(cands, cand{dir: d, epoch: rep.Epoch, prefix: rep.Prefix, idx: i})
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].epoch != cands[j].epoch {
			return cands[i].epoch > cands[j].epoch
		}
		if cands[i].prefix != cands[j].prefix {
			return cands[i].prefix > cands[j].prefix
		}
		return cands[i].idx < cands[j].idx
	})
	var openErrs []error
	for _, c := range cands {
		ld, err := s.openLeader(c.dir)
		if err != nil {
			openErrs = append(openErrs, fmt.Errorf("%s: %w", c.dir, err))
			continue
		}
		s.leader = ld
		s.leaderDir = c.dir
		break
	}
	if s.leader == nil {
		return nil, fmt.Errorf("replica: no directory recovers: %w", errors.Join(openErrs...))
	}
	s.epoch = s.leader.Epoch()

	s.mu.Lock()
	defer s.mu.Unlock()
	for _, d := range opts.Dirs {
		if d == s.leaderDir {
			continue
		}
		f := &follower{dir: d}
		s.followers = append(s.followers, f)
		s.attachLocked(f)
	}
	return s, nil
}

// openLeader opens dir as a full store wired for leadership: the
// fan-out shipper, the (single) flight recorder, and the directory's
// own failpoint hook.
func (s *Set) openLeader(dir string) (*persist.File, error) {
	po := s.storeOpts(dir)
	po.Shipper = (*fanout)(s)
	po.PhaseHook = s.opts.Persist.PhaseHook
	if s.live != nil {
		po.BlackBox = s.live
	}
	return persist.Open(dir, po)
}

// storeOpts derives the per-directory store configuration: the shared
// template stripped of role-specific hooks, plus the directory's
// failpoint.
func (s *Set) storeOpts(dir string) persist.Options {
	po := s.opts.Persist
	po.Shipper = nil
	po.BlackBox = nil
	po.PhaseHook = nil
	if s.opts.InjectFor != nil {
		if i, ok := s.dirIdx[dir]; ok {
			po.Inject = s.opts.InjectFor(i)
		}
	}
	return po
}

// Recovered implements nvm.Backend by delegating to the current leader.
func (s *Set) Recovered(a nvm.Addr) (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.leader.Recovered(a)
}

// Grow implements nvm.Backend: the initial value is recorded in the
// allocation shadow (replayed onto a promoted leader) and handed to the
// current leader.
func (s *Set) Grow(a nvm.Addr, init uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.grows[a] = init
	s.leader.Grow(a, init)
}

// Commit implements nvm.Backend: the batch commits on the leader and is
// acknowledged once a majority of the replicas hold it durably. A
// degraded leader is replaced by a promoted follower and the batch
// reapplied — the caller never observes the failover. Commit fails
// (sticky, wrapped in *nvm.DegradedError) only when no replica can
// serve or quorum cannot be restored.
func (s *Set) Commit(batch []nvm.WordUpdate) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.degraded != nil {
		return s.degraded
	}
	var lerr error
	for range s.opts.Dirs { // at most one promotion per member
		lerr = s.leader.Commit(batch)
		if lerr != nil {
			if perr := s.promoteLocked(); perr != nil {
				// Both branches stay on the %w chain: errors.Is must
				// resolve the root I/O failure through the set-level
				// degradation (see TestDegradedCauseChain).
				return s.degradeLocked(fmt.Errorf("replica: failover failed: %w (leader: %w)", perr, lerr))
			}
			continue // reapply the batch on the promoted leader
		}
		s.commits++
		seq := s.leader.Seq()
		s.distributeSnapLocked()
		if !s.quorumLocked(seq) {
			// Quorum shortfall: heal every faulted follower right now,
			// ignoring backoff — the ack is blocked on it.
			s.healLocked(true)
			if !s.quorumLocked(seq) {
				return s.degradeLocked(fmt.Errorf("%w: %d/%d replicas durable at seq %d",
					ErrNoQuorum, s.durableCountLocked(seq), len(s.opts.Dirs), seq))
			}
		}
		s.healLocked(false)
		return nil
	}
	return s.degradeLocked(fmt.Errorf("replica: no replica could serve: %w", lerr))
}

// durableCountLocked counts the members holding seq durably: the leader
// (whose Commit returned) plus every healthy follower fenced at or past
// it.
func (s *Set) durableCountLocked(seq uint64) int {
	n := 1
	for _, f := range s.followers {
		if f.healthy && f.durable >= seq {
			n++
		}
	}
	return n
}

func (s *Set) quorumLocked(seq uint64) bool {
	return s.durableCountLocked(seq) >= s.quorum
}

// degradeLocked sticks the set-level degradation. The cause chain stays
// intact: errors.Is resolves both nvm.ErrDegraded and the root cause.
func (s *Set) degradeLocked(err error) error {
	if s.degraded == nil {
		if de := (*nvm.DegradedError)(nil); errors.As(err, &de) {
			s.degraded = de
		} else {
			s.degraded = &nvm.DegradedError{Cause: err}
		}
	}
	return s.degraded
}

// Err returns nil while the set can serve and the sticky
// *nvm.DegradedError once it cannot.
func (s *Set) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded
}

// Epoch returns the current replication epoch.
func (s *Set) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Seq returns the leader's last committed sequence.
func (s *Set) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.leader.Seq()
}

// LeaderDir returns the directory currently serving as leader.
func (s *Set) LeaderDir() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.leaderDir
}

// Quorum returns the majority threshold (len(Dirs)/2 + 1).
func (s *Set) Quorum() int { return s.quorum }

// Close releases every member. Nothing is flushed: anything
// acknowledged is already durable on a quorum.
func (s *Set) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.leader.Close()
	for _, f := range s.followers {
		if f.mirror != nil {
			if cerr := f.mirror.Close(); err == nil {
				err = cerr
			}
			f.mirror = nil
		}
		f.healthy = false
	}
	return err
}

// resetDir removes every file in a replica directory, readying it for a
// fresh snapshot install. Used when a directory's history outranks the
// elected leader's: its unique suffix was never acknowledged on a
// quorum (or the directory would have won the election), so discarding
// it is what keeps the members convergent.
func resetDir(dir string) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		if err := os.RemoveAll(filepath.Join(dir, e.Name())); err != nil {
			return err
		}
	}
	return nil
}

// liveBox adapts the caller's flight recorder for a store that changes
// homes: Recover runs only on the first open (a later leader's region
// file must not reseed — and thereby wipe — the live ring), while Sync
// and the commit markers pass straight through.
type liveBox struct {
	inner persist.BlackBox
	used  bool
}

// SizeBytes implements persist.BlackBox.
func (b *liveBox) SizeBytes() int64 { return b.inner.SizeBytes() }

// Recover implements persist.BlackBox; only the first call reaches the
// recorder.
func (b *liveBox) Recover(img []byte) (valid, torn int) {
	if b.used {
		return 0, 0
	}
	b.used = true
	return b.inner.Recover(img)
}

// Sync implements persist.BlackBox.
func (b *liveBox) Sync(pw func(b []byte, off int64) error) error { return b.inner.Sync(pw) }

// RecordCommit forwards the commit marker when the recorder supports it
// (the store discovers the method by assertion, which would otherwise
// stop at this wrapper).
func (b *liveBox) RecordCommit(seq, words uint64) {
	if cr, ok := b.inner.(interface{ RecordCommit(seq, words uint64) }); ok {
		cr.RecordCommit(seq, words)
	}
}
