// Package replica replicates the durable backend across N
// single-process replica directories, so that the persistent state
// survives not just crashes but the loss or corruption of any minority
// of its store directories.
//
// A Set implements nvm.Backend over the directories: one is opened as
// the leader (a full persist.File), the rest as followers
// (persist.Mirror — append-only stores in the exact on-disk format the
// leader recovers from). Every commit flows through the leader's WAL
// and is shipped record-by-record to the followers through the
// persist.Shipper hooks; an operation is acknowledged only once a
// majority of the directories (leader included) hold it durably.
//
// # Epochs and failover
//
// When the leader's store degrades (its local I/O retry budget is
// exhausted), the Set promotes the follower with the longest durable
// prefix: its directory is reopened as a full store, the epoch is
// bumped and made durable on the new leader and every surviving mirror
// before the first new-epoch acknowledgement, and the interrupted batch
// is reapplied (records carry absolute page images, so the replay is
// idempotent). The nvm.Memory above observes nothing — the commit that
// triggered the failover completes on the new leader.
//
// Epochs are the fencing mechanism: a demoted leader's directory keeps
// its old epoch, and recovery elections order candidates by
// (epoch, prefix), so any suffix the stale leader wrote but never
// replicated is outranked — and wiped by a snapshot install — when the
// directory is healed back in as a follower.
//
// # Catch-up and healing
//
// Shipping failures never degrade the leader; they mark the follower
// faulted. Faulted followers are retried after a backoff measured in
// commits (exponential in consecutive failures, jittered so followers
// decorrelate), and healed by record catch-up when their prefix is
// still in the leader's log, or by snapshot transfer when it has been
// checkpointed away or they carry a stale-epoch tail.
//
// # Recovery
//
// Open scans every directory (persist.ScanDir, read-only), ranks them
// by (epoch, durable prefix), and opens the best one that actually
// recovers as the leader — so the reconstructed state is the longest
// acknowledged history any surviving directory holds. The remaining
// directories re-join as followers and are caught up to the winner.
package replica
