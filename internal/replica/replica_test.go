package replica_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"nrl/internal/flightrec"
	"nrl/internal/nvm"
	"nrl/internal/persist"
	"nrl/internal/replica"
)

// dirs makes n replica directories under one temp root, named r0..r{n-1}.
func dirs(t *testing.T, n int) []string {
	t.Helper()
	root := t.TempDir()
	ds := make([]string, n)
	for i := range ds {
		ds[i] = filepath.Join(root, fmt.Sprintf("r%d", i))
	}
	return ds
}

// fastOpts is the base Set configuration for tests: no real sleeping,
// tiny segments so rotation happens, and a fixed seed.
func fastOpts(ds []string) replica.Options {
	return replica.Options{
		Dirs: ds,
		Persist: persist.Options{
			Sleep:        func(time.Duration) {},
			SegmentBytes: 512,
		},
		Seed: 42,
	}
}

func openSet(t *testing.T, opts replica.Options) *replica.Set {
	t.Helper()
	s, err := replica.Open(opts)
	if err != nil {
		t.Fatalf("replica.Open: %v", err)
	}
	return s
}

func commitVal(t *testing.T, s *replica.Set, a nvm.Addr, v uint64) {
	t.Helper()
	if err := s.Commit([]nvm.WordUpdate{{Addr: a, Val: v}}); err != nil {
		t.Fatalf("Commit(%d=%d): %v", a, v, err)
	}
}

func TestReplicatedCommitAndReopen(t *testing.T) {
	ds := dirs(t, 3)
	s := openSet(t, fastOpts(ds))
	for i := 0; i < 20; i++ {
		s.Grow(nvm.Addr(i), 0)
		commitVal(t, s, nvm.Addr(i), uint64(100+i))
	}
	if got := s.Seq(); got != 20 {
		t.Fatalf("Seq = %d, want 20", got)
	}
	st := s.Status()
	if len(st.Members) != 3 || st.Members[0].Role != "leader" {
		t.Fatalf("status = %+v, want 3 members led by %s", st, s.LeaderDir())
	}
	for _, m := range st.Members {
		if !m.Healthy || m.Seq != 20 {
			t.Fatalf("member %+v, want healthy at seq 20", m)
		}
	}
	s.Close()

	// Reopen: the election must land on the same durable prefix.
	s2 := openSet(t, fastOpts(ds))
	defer s2.Close()
	for i := 0; i < 20; i++ {
		if got, ok := s2.Recovered(nvm.Addr(i)); !ok || got != uint64(100+i) {
			t.Fatalf("Recovered(%d) = %d,%v, want %d", i, got, ok, 100+i)
		}
	}
}

// TestLeaderFaultPromotesFollower is the tentpole behavior: the
// leader's disk dies mid-service, a follower is promoted in a higher
// epoch, the interrupted commit completes, and nothing acked is lost.
func TestLeaderFaultPromotesFollower(t *testing.T) {
	ds := dirs(t, 3)
	var failLeader atomic.Bool
	opts := fastOpts(ds)
	opts.InjectFor = func(i int) func(op string) error {
		if i != 0 {
			return nil
		}
		return func(op string) error {
			if failLeader.Load() {
				return errors.New("injected disk failure")
			}
			return nil
		}
	}
	s := openSet(t, opts)
	defer s.Close()
	if s.LeaderDir() != ds[0] {
		t.Fatalf("leader = %s, want %s", s.LeaderDir(), ds[0])
	}
	epoch0 := s.Epoch()
	for i := 0; i < 10; i++ {
		s.Grow(nvm.Addr(i), 0)
		commitVal(t, s, nvm.Addr(i), uint64(i+1))
	}

	// Kill the leader directory's I/O. The very next commit must fail
	// over and still succeed.
	failLeader.Store(true)
	s.Grow(nvm.Addr(10), 0)
	commitVal(t, s, nvm.Addr(10), 999)

	if s.LeaderDir() == ds[0] {
		t.Fatal("leader did not move off the faulted directory")
	}
	if s.Epoch() <= epoch0 {
		t.Fatalf("epoch = %d, want above %d after failover", s.Epoch(), epoch0)
	}
	st := s.Status()
	if st.Promotions != 1 {
		t.Fatalf("promotions = %d, want 1", st.Promotions)
	}
	// Service continues: every pre- and post-failover value is durable.
	for i := 0; i < 10; i++ {
		commitVal(t, s, nvm.Addr(i), uint64(1000+i))
	}
	if got, ok := s.Recovered(10); !ok || got != 999 {
		t.Fatalf("Recovered(10) = %d,%v, want 999", got, ok)
	}
}

// TestFailoverSurvivesReopen: after a promotion, a full restart's
// election must pick the new epoch's history — the demoted leader can
// never win with its stale suffix.
func TestFailoverSurvivesReopen(t *testing.T) {
	ds := dirs(t, 3)
	var failFirst atomic.Bool
	mk := func() replica.Options {
		opts := fastOpts(ds)
		opts.InjectFor = func(i int) func(op string) error {
			if i != 0 {
				return nil
			}
			return func(op string) error {
				if failFirst.Load() {
					return errors.New("injected disk failure")
				}
				return nil
			}
		}
		return opts
	}
	s := openSet(t, mk())
	s.Grow(0, 0)
	commitVal(t, s, 0, 1)
	failFirst.Store(true)
	commitVal(t, s, 0, 2) // fails over
	commitVal(t, s, 0, 3) // post-failover history
	newLeader := s.LeaderDir()
	newEpoch := s.Epoch()
	s.Close()

	failFirst.Store(false) // the old leader's disk comes back healthy
	s2 := openSet(t, mk())
	defer s2.Close()
	if got := s2.LeaderDir(); got == ds[0] {
		t.Fatalf("stale leader %s won re-election against epoch %d history on %s", got, newEpoch, newLeader)
	}
	if got := s2.Epoch(); got < newEpoch {
		t.Fatalf("reopened epoch = %d, want >= %d", got, newEpoch)
	}
	if got, ok := s2.Recovered(0); !ok || got != 3 {
		t.Fatalf("Recovered(0) = %d,%v, want 3", got, ok)
	}
}

// TestQuorumLossDegrades: with a majority of directories dead, commits
// must degrade sticky — carrying both nvm.ErrDegraded and
// replica.ErrNoQuorum, with the root cause resolvable end-to-end.
func TestQuorumLossDegrades(t *testing.T) {
	ds := dirs(t, 3)
	rootCause := errors.New("simulated media failure")
	var failFollowers atomic.Bool
	opts := fastOpts(ds)
	opts.InjectFor = func(i int) func(op string) error {
		if i == 0 {
			return nil
		}
		return func(op string) error {
			if failFollowers.Load() {
				return rootCause
			}
			return nil
		}
	}
	s := openSet(t, opts)
	defer s.Close()
	s.Grow(0, 0)
	commitVal(t, s, 0, 1)

	failFollowers.Store(true)
	var err error
	for i := 0; i < 10; i++ {
		if err = s.Commit([]nvm.WordUpdate{{Addr: 0, Val: uint64(2 + i)}}); err != nil {
			break
		}
	}
	if err == nil {
		t.Fatal("commits kept succeeding with both followers dead")
	}
	if !errors.Is(err, nvm.ErrDegraded) {
		t.Fatalf("err = %v, want nvm.ErrDegraded in chain", err)
	}
	if !errors.Is(err, replica.ErrNoQuorum) {
		t.Fatalf("err = %v, want replica.ErrNoQuorum in chain", err)
	}
	// Sticky: later commits fail identically.
	if err2 := s.Commit([]nvm.WordUpdate{{Addr: 0, Val: 99}}); !errors.Is(err2, nvm.ErrDegraded) {
		t.Fatalf("degradation not sticky: %v", err2)
	}
	if s.Err() == nil {
		t.Fatal("Err() = nil after degradation")
	}
}

// TestFollowerHealsAfterTransientFault: a follower that drops out comes
// back via the heal path and counts toward quorum again.
func TestFollowerHealsAfterTransientFault(t *testing.T) {
	ds := dirs(t, 3)
	var failOne atomic.Bool
	opts := fastOpts(ds)
	opts.ShipRetries = 1
	opts.InjectFor = func(i int) func(op string) error {
		if i != 2 {
			return nil
		}
		return func(op string) error {
			if failOne.Load() {
				return errors.New("transient follower fault")
			}
			return nil
		}
	}
	s := openSet(t, opts)
	defer s.Close()
	s.Grow(0, 0)
	commitVal(t, s, 0, 1)

	failOne.Store(true)
	commitVal(t, s, 0, 2) // follower 2 faults; quorum holds at 2/3
	st := s.Status()
	faulted := 0
	for _, m := range st.Members {
		if m.Role == "faulted" {
			faulted++
		}
	}
	if faulted != 1 {
		t.Fatalf("status after fault = %+v, want exactly one faulted member", st)
	}

	failOne.Store(false)
	// Heal backoff is measured in commits; a handful of commits must
	// bring the follower back.
	for i := 0; i < 20; i++ {
		commitVal(t, s, 0, uint64(10+i))
	}
	st = s.Status()
	if st.Heals == 0 {
		t.Fatalf("status = %+v, want at least one heal", st)
	}
	for _, m := range st.Members {
		if !m.Healthy {
			t.Fatalf("member %+v still unhealthy after heal window", m)
		}
		if m.Seq != st.Members[0].Seq {
			t.Fatalf("member %+v behind leader seq %d after heal", m, st.Members[0].Seq)
		}
	}
}

// TestSnapshotCatchUp: a follower that missed a checkpointed range is
// healed by snapshot transfer, not records.
func TestSnapshotCatchUp(t *testing.T) {
	ds := dirs(t, 3)
	var failOne atomic.Bool
	opts := fastOpts(ds)
	opts.Persist.CheckpointBytes = 2048 // checkpoint every few records
	opts.ShipRetries = 0
	opts.InjectFor = func(i int) func(op string) error {
		if i != 2 {
			return nil
		}
		return func(op string) error {
			if failOne.Load() {
				return errors.New("long follower outage")
			}
			return nil
		}
	}
	s := openSet(t, opts)
	defer s.Close()
	s.Grow(0, 0)
	commitVal(t, s, 0, 1)
	failOne.Store(true)
	// Enough commits that the outage spans at least one checkpoint: the
	// leader's log no longer holds the follower's gap.
	for i := 0; i < 40; i++ {
		commitVal(t, s, 0, uint64(i+2))
	}
	failOne.Store(false)
	// The heal backoff is exponential in the consecutive failures the
	// outage piled up, measured in commits: keep committing until the
	// schedule readmits the follower.
	last := uint64(0)
	for i := 0; i < 200; i++ {
		last = uint64(100 + i)
		commitVal(t, s, 0, last)
		if st := s.Status(); st.Heals > 0 {
			break
		}
	}
	st := s.Status()
	for _, m := range st.Members {
		if !m.Healthy || m.Seq != st.Members[0].Seq {
			t.Fatalf("member %+v not caught up to leader %+v", m, st.Members[0])
		}
	}
	// The healed follower can win a fresh election and serve the state.
	s.Close()
	s2 := openSet(t, fastOpts(ds))
	defer s2.Close()
	if got, ok := s2.Recovered(0); !ok || got != last {
		t.Fatalf("Recovered(0) = %d,%v, want %d", got, ok, last)
	}
}

// TestOpenSkipsCorruptDirectory: a replica directory damaged beyond
// recovery must not win the election — and must not block Open.
func TestOpenSkipsCorruptDirectory(t *testing.T) {
	ds := dirs(t, 3)
	s := openSet(t, fastOpts(ds))
	s.Grow(0, 0)
	for i := 0; i < 10; i++ {
		commitVal(t, s, 0, uint64(i+1))
	}
	leaderDir := s.LeaderDir()
	s.Close()

	// Trash the previous leader's data file header over committed state:
	// persist.Open rejects it as corrupt.
	data := filepath.Join(leaderDir, "data")
	b, err := os.ReadFile(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16 && i < len(b); i++ {
		b[i] ^= 0xff
	}
	if err := os.WriteFile(data, b, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openSet(t, fastOpts(ds))
	defer s2.Close()
	if s2.LeaderDir() == leaderDir {
		t.Fatal("election picked the corrupt directory")
	}
	if got, ok := s2.Recovered(0); !ok || got != 10 {
		t.Fatalf("Recovered(0) = %d,%v, want 10", got, ok)
	}
	// The corrupt member is reported, not hidden.
	st := s2.Status()
	if len(st.Members) != 3 {
		t.Fatalf("status = %+v, want all 3 members listed", st)
	}
}

// TestSingleDirDegenerates: one directory is an unreplicated store —
// same API, quorum of one.
func TestSingleDirDegenerates(t *testing.T) {
	ds := dirs(t, 1)
	s := openSet(t, fastOpts(ds))
	if s.Quorum() != 1 {
		t.Fatalf("Quorum = %d, want 1", s.Quorum())
	}
	s.Grow(0, 0)
	commitVal(t, s, 0, 7)
	s.Close()
	s2 := openSet(t, fastOpts(ds))
	defer s2.Close()
	if got, ok := s2.Recovered(0); !ok || got != 7 {
		t.Fatalf("Recovered(0) = %d,%v, want 7", got, ok)
	}
}

// TestMemoryOverReplicaSet runs the real stack — nvm.Memory in Buffered
// mode over a Set — through a mid-workload failover: the memory layer
// must never observe it.
func TestMemoryOverReplicaSet(t *testing.T) {
	ds := dirs(t, 3)
	var failLeader atomic.Bool
	opts := fastOpts(ds)
	opts.InjectFor = func(i int) func(op string) error {
		if i != 0 {
			return nil
		}
		return func(op string) error {
			if failLeader.Load() {
				return errors.New("injected disk failure")
			}
			return nil
		}
	}
	s := openSet(t, opts)
	defer s.Close()

	mem := nvm.New(nvm.WithMode(nvm.Buffered), nvm.WithBackend(s))
	a := mem.Alloc("x", 0)
	for i := 1; i <= 5; i++ {
		mem.Write(a, uint64(i))
		mem.Flush(a)
		mem.Fence()
	}
	failLeader.Store(true)
	for i := 6; i <= 10; i++ {
		mem.Write(a, uint64(i))
		mem.Flush(a)
		mem.Fence()
	}
	if err := mem.Err(); err != nil {
		t.Fatalf("memory degraded across failover: %v", err)
	}
	if s.Status().Promotions == 0 {
		t.Fatal("no promotion happened; the fault never bit")
	}
	s.Close()

	// A fresh stack over the surviving directories recovers the value.
	s2 := openSet(t, fastOpts(ds))
	defer s2.Close()
	mem2 := nvm.New(nvm.WithMode(nvm.Buffered), nvm.WithBackend(s2))
	a2 := mem2.Alloc("x", 0)
	if got := mem2.Durable(a2); got != 10 {
		t.Fatalf("Durable = %d, want 10", got)
	}
}

// TestFlightRecorderRidesFailover: the black box is attached to the
// leader's store; after promotion its ring must be rewritten wholesale
// into the new leader's directory, so a post-crash forensics read of
// the serving directory explains the full history.
func TestFlightRecorderRidesFailover(t *testing.T) {
	ds := dirs(t, 3)
	var failLeader atomic.Bool
	rec := flightrec.NewRecorder(flightrec.Options{})
	opts := fastOpts(ds)
	opts.Persist.BlackBox = rec
	opts.InjectFor = func(i int) func(op string) error {
		if i != 0 {
			return nil
		}
		return func(op string) error {
			// The bbox writes share the leader directory's fate.
			if failLeader.Load() {
				return errors.New("injected disk failure")
			}
			return nil
		}
	}
	s := openSet(t, opts)
	defer s.Close()
	s.Grow(0, 0)
	for i := 1; i <= 4; i++ {
		rec.Record(flightrec.Rec{Kind: flightrec.KindBegin, P: 1, Depth: 1, Obj: "x", Op: "Set", Val: uint64(i)})
		commitVal(t, s, 0, uint64(i))
		rec.Record(flightrec.Rec{Kind: flightrec.KindEnd, P: 1, Depth: 1, Obj: "x", Op: "Set", Val: uint64(i)})
	}
	failLeader.Store(true)
	rec.Record(flightrec.Rec{Kind: flightrec.KindBegin, P: 1, Depth: 1, Obj: "x", Op: "Set", Val: 5})
	commitVal(t, s, 0, 5)
	rec.Record(flightrec.Rec{Kind: flightrec.KindEnd, P: 1, Depth: 1, Obj: "x", Op: "Set", Val: 5})
	commitVal(t, s, 0, 6) // the end record rides this commit's sync
	newLeader := s.LeaderDir()
	if newLeader == ds[0] {
		t.Fatal("no failover happened")
	}
	s.Close()

	// Crash-read the new leader's bbox: the whole story must be there,
	// including records written before the failover.
	rec2 := flightrec.NewRecorder(flightrec.Options{})
	f, err := persist.Open(newLeader, persist.Options{
		Sleep:    func(time.Duration) {},
		BlackBox: rec2,
	})
	if err != nil {
		t.Fatalf("open new leader: %v", err)
	}
	defer f.Close()
	recs := rec2.Recovered()
	var begins, ends int
	for _, r := range recs {
		switch r.Kind {
		case flightrec.KindBegin:
			begins++
		case flightrec.KindEnd:
			ends++
		}
	}
	if begins < 5 || ends < 5 {
		t.Fatalf("recovered %d begins / %d ends from new leader's bbox, want >= 5 each (%d records)",
			begins, ends, len(recs))
	}
}

// TestDegradedCauseChain: the sticky error a dead set returns must
// resolve the root I/O failure through errors.Is end-to-end, replica
// and persist wrapping included.
func TestDegradedCauseChain(t *testing.T) {
	ds := dirs(t, 1)
	rootCause := errors.New("EIO at the bottom")
	var fail atomic.Bool
	opts := fastOpts(ds)
	opts.InjectFor = func(int) func(op string) error {
		return func(op string) error {
			if fail.Load() {
				return rootCause
			}
			return nil
		}
	}
	s := openSet(t, opts)
	defer s.Close()
	s.Grow(0, 0)
	commitVal(t, s, 0, 1)
	fail.Store(true)
	err := s.Commit([]nvm.WordUpdate{{Addr: 0, Val: 2}})
	if err == nil {
		t.Fatal("commit succeeded with dead disk")
	}
	if !errors.Is(err, nvm.ErrDegraded) {
		t.Fatalf("err = %v, want nvm.ErrDegraded", err)
	}
	if !errors.Is(err, rootCause) {
		t.Fatalf("err = %v, want root cause %v resolvable via errors.Is", err, rootCause)
	}
	var de *nvm.DegradedError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *nvm.DegradedError via errors.As", err)
	}
}
