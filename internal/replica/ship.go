package replica

import (
	"errors"

	"nrl/internal/persist"
)

// fanout is the Set's persist.Shipper: it relays the leader's commit
// pipeline to every attached follower. The hooks run while the Set's
// own mutex is held (every call into the leader happens under it), so
// they touch Set state directly and must not lock.
type fanout Set

// Append ships one committed record to every healthy follower.
func (fn *fanout) Append(seq, epoch uint64, rec []byte) {
	_ = epoch // followers learn epochs via SetEpoch, not per record
	s := (*Set)(fn)
	for _, f := range s.followers {
		if !f.healthy || f.mirror == nil {
			continue
		}
		if !s.shipTry(func() error { return f.mirror.Append(seq, rec) }) {
			s.faultLocked(f)
		}
	}
}

// Fence fsyncs every healthy follower; a follower that lands it is
// durable at seq and counts toward quorum.
func (fn *fanout) Fence(seq uint64) {
	s := (*Set)(fn)
	for _, f := range s.followers {
		if !f.healthy || f.mirror == nil {
			continue
		}
		if s.shipTry(func() error { return f.mirror.Fence() }) {
			f.durable = seq
		} else {
			s.faultLocked(f)
		}
	}
}

// Checkpoint notes that the leader folded its log; the snapshot is
// distributed by the commit path once the leader's lock is released
// (the hook itself runs inside the leader's commit).
func (fn *fanout) Checkpoint(snapshotSeq uint64) {
	_ = snapshotSeq
	(*Set)(fn).snapPending = true
}

// shipTry runs one follower operation under the ship retry budget:
// exponential backoff with jitter (half fixed, half random, so retry
// storms across followers decorrelate). Both halves are deterministic:
// the random half draws from the Set's seeded stream and the wait runs
// through the injectable sleeper, so a replayed campaign retries on
// the same schedule. A sequence gap aborts immediately — retrying
// cannot fix it; only catch-up can.
func (s *Set) shipTry(op func() error) bool {
	delay := s.opts.ShipBaseDelay
	for attempt := 0; ; attempt++ {
		err := op()
		if err == nil {
			return true
		}
		if errors.Is(err, persist.ErrSeqGap) || attempt >= s.opts.ShipRetries {
			return false
		}
		s.sleep(s.rng.Jitter(delay))
		delay *= 2
		if delay > s.opts.ShipMaxDelay {
			delay = s.opts.ShipMaxDelay
		}
	}
}

// faultLocked detaches a follower after a ship failure and schedules
// its heal.
func (s *Set) faultLocked(f *follower) {
	if f.mirror != nil {
		f.mirror.Close()
		f.mirror = nil
	}
	s.backoffLocked(f)
}

// backoffLocked marks a follower faulted and schedules the next heal
// attempt: exponential in consecutive failures, jittered, measured in
// commits so the schedule is deterministic under test.
func (s *Set) backoffLocked(f *follower) {
	f.healthy = false
	f.fails++
	n := f.fails - 1
	if n > 6 {
		n = 6
	}
	base := uint64(1) << uint(n)
	f.nextHeal = s.commits + base + uint64(s.rng.Int63n(int64(base)))
}

// healLocked retries faulted followers: those whose backoff expired, or
// all of them when force is set (a quorum shortfall cannot wait).
func (s *Set) healLocked(force bool) {
	for _, f := range s.followers {
		if f.healthy {
			continue
		}
		if !force && s.commits < f.nextHeal {
			continue
		}
		if f.mirror != nil {
			f.mirror.Close()
			f.mirror = nil
		}
		s.attachLocked(f)
		if f.healthy {
			s.heals++
		}
	}
}

// attachLocked (re)opens a follower's mirror and catches it up to the
// leader. On any failure the follower stays faulted with its backoff
// advanced.
func (s *Set) attachLocked(f *follower) {
	m, err := persist.OpenMirror(f.dir, s.storeOpts(f.dir))
	if err != nil {
		s.backoffLocked(f)
		return
	}
	// A directory that outranks the elected leader holds a suffix that
	// was never acknowledged on a quorum (otherwise it would have won
	// the election); reset it so it rejoins convergent. This only
	// arises when the top-ranked directory failed to recover and
	// leadership fell to the runner-up.
	if m.Epoch() > s.epoch || (m.Epoch() == s.epoch && m.Seq() > s.leader.Seq()) {
		m.Close()
		if err := resetDir(f.dir); err != nil {
			s.backoffLocked(f)
			return
		}
		if m, err = persist.OpenMirror(f.dir, s.storeOpts(f.dir)); err != nil {
			s.backoffLocked(f)
			return
		}
	}
	f.mirror = m
	if err := s.catchUpLocked(f); err != nil {
		m.Close()
		f.mirror = nil
		s.backoffLocked(f)
		return
	}
	f.healthy = true
	f.fails = 0
}

// catchUpLocked brings an attached follower to the leader's durable
// state: by records when its prefix is still in the leader's log (same
// epoch, no gap), by snapshot transfer otherwise — which also wipes any
// stale-epoch tail the directory carried.
func (s *Set) catchUpLocked(f *follower) error {
	m := f.mirror
	if m.Epoch() == s.epoch && m.Seq() <= s.leader.Seq() {
		if recs, ok, err := s.leader.RecordsSince(m.Seq()); err == nil && ok {
			rerr := func() error {
				for _, r := range recs {
					if err := m.Append(r.Seq, r.Rec); err != nil {
						return err
					}
				}
				return m.Fence()
			}()
			if rerr == nil {
				f.durable = m.Seq()
				return nil
			}
			// Record catch-up failed part-way; fall through to the
			// snapshot path, which replaces the state wholesale.
		}
	}
	img, seq, err := s.leader.Snapshot()
	if err != nil {
		return err // leader degraded: the next commit fails over
	}
	if err := m.InstallSnapshot(img, seq, s.epoch); err != nil {
		return err
	}
	f.durable = seq
	return nil
}

// distributeSnapLocked pushes the leader's latest checkpoint to every
// healthy follower, resetting their logs so follower disk usage tracks
// the leader's checkpoint cadence instead of growing without bound.
func (s *Set) distributeSnapLocked() {
	if !s.snapPending {
		return
	}
	s.snapPending = false
	img, seq, err := s.leader.Snapshot()
	if err != nil {
		return // leader degraded: the next commit fails over
	}
	for _, f := range s.followers {
		if !f.healthy || f.mirror == nil || f.mirror.SnapshotSeq() >= seq {
			continue
		}
		if s.shipTry(func() error { return f.mirror.InstallSnapshot(img, seq, s.epoch) }) {
			f.durable = seq
		} else {
			s.faultLocked(f)
		}
	}
}
