package nrl_test

import (
	"errors"
	"strings"
	"testing"

	"nrl"
)

// TestFacadeCounter drives the whole public surface the way the README's
// quickstart does.
func TestFacadeCounter(t *testing.T) {
	rec := nrl.NewRecorder()
	inj := &nrl.RandomCrash{Rate: 0.01, Seed: 1, MaxCrashes: 10}
	sys := nrl.NewSystem(nrl.Config{Procs: 3, Recorder: rec, Injector: inj})
	ctr := nrl.NewCounter(sys, "ctr")
	for p := 1; p <= 3; p++ {
		sys.Go(p, func(c *nrl.Ctx) {
			for i := 0; i < 20; i++ {
				ctr.Inc(c)
			}
		})
	}
	sys.Wait()
	if got := ctr.Read(sys.Proc(1).Ctx()); got != 60 {
		t.Errorf("counter = %d, want 60", got)
	}
	models := nrl.Models(map[string]nrl.Model{"ctr": nrl.CounterModel{}})
	if err := nrl.CheckNRL(models, rec.History()); err != nil {
		t.Errorf("CheckNRL = %v", err)
	}
}

// TestFacadeModelsResolution checks the naming-convention resolution of
// nested object models.
func TestFacadeModelsResolution(t *testing.T) {
	models := nrl.Models(map[string]nrl.Model{"top": nrl.StackModel{}})
	tests := []struct {
		obj  string
		want string
	}{
		{"top", "stack"},
		{"ctr.R[3]", "register"},
		{"anything.cas", "cas"},
		{"s.top", "cas"},
		{"s.alloc", "faa"},
	}
	for _, tt := range tests {
		m := models(tt.obj)
		if m == nil {
			t.Errorf("Models(%q) = nil", tt.obj)
			continue
		}
		if got := m.Name(); got != tt.want {
			t.Errorf("Models(%q).Name() = %q, want %q", tt.obj, got, tt.want)
		}
	}
	if m := models("unknown"); m != nil {
		t.Errorf("Models(unknown) = %v, want nil", m)
	}
}

// TestFacadeAllObjects constructs every object through the facade and
// performs one operation on each.
func TestFacadeAllObjects(t *testing.T) {
	sys := nrl.NewSystem(nrl.Config{Procs: 2})
	c := sys.Proc(1).Ctx()

	reg := nrl.NewRegister(sys, "r", 0)
	reg.Write(c, nrl.Distinct(1, 1, 5))
	if v := reg.Read(c); nrl.DistinctCAS(1, 1, 0) == 0 || v == 0 {
		// value sanity only; Distinct round-trip is tested in core.
		_ = v
	}

	cas := nrl.NewCASObject(sys, "c")
	if !cas.CAS(c, 0, nrl.DistinctCAS(1, 1, 9)) {
		t.Error("CAS failed")
	}

	tas := nrl.NewTAS(sys, "t")
	if tas.TestAndSet(c) != 0 {
		t.Error("TAS lost solo")
	}

	faa := nrl.NewFAA(sys, "f")
	if faa.Add(c, 2) != 0 {
		t.Error("FAA bad prev")
	}

	mr := nrl.NewMaxRegister(sys, "m")
	mr.WriteMax(c, 9)
	if mr.ReadMax(c) != 9 {
		t.Error("MaxRegister bad read")
	}

	st := nrl.NewStack(sys, "s", 8)
	st.Push(c, 4)
	if st.Pop(c) != 4 {
		t.Error("Stack bad pop")
	}
	if st.Pop(c) != nrl.Empty {
		t.Error("Stack not empty")
	}

	l := nrl.NewLock(sys, "lk")
	if l.Acquire(c) != 0 {
		t.Error("Lock bad ticket")
	}
	l.Release(c)
}

// TestFacadeControlledDeterminism: the controlled scheduler exposed via
// the facade is deterministic per seed.
func TestFacadeControlledDeterminism(t *testing.T) {
	run := func() string {
		rec := nrl.NewRecorder()
		sys := nrl.NewSystem(nrl.Config{
			Procs:     2,
			Recorder:  rec,
			Scheduler: nrl.NewControlled(nrl.RandomPicker(42)),
		})
		ctr := nrl.NewCounter(sys, "ctr")
		sys.Run(map[int]func(*nrl.Ctx){
			1: func(c *nrl.Ctx) { ctr.Inc(c); ctr.Read(c) },
			2: func(c *nrl.Ctx) { ctr.Inc(c) },
		})
		return rec.History().String()
	}
	if a, b := run(), run(); a != b {
		t.Error("same seed produced different histories through the facade")
	}
}

// TestFacadeCheckLinearizable exercises the crash-free checker via the
// facade, including the failure message.
func TestFacadeCheckLinearizable(t *testing.T) {
	rec := nrl.NewRecorder()
	sys := nrl.NewSystem(nrl.Config{Procs: 1, Recorder: rec})
	reg := nrl.NewRegister(sys, "r", 0)
	c := sys.Proc(1).Ctx()
	reg.Write(c, 5)
	reg.Read(c)
	models := nrl.Models(map[string]nrl.Model{"r": nrl.RegisterModel{}})
	if err := nrl.CheckLinearizable(models, rec.History()); err != nil {
		t.Errorf("CheckLinearizable = %v", err)
	}
	// Missing model produces a useful error.
	empty := nrl.Models(nil)
	err := nrl.CheckLinearizable(empty, rec.History())
	if err == nil || !strings.Contains(err.Error(), "no model") {
		t.Errorf("CheckLinearizable with no models = %v", err)
	}
}

// TestFacadeTracing drives the tracing surface end to end through the
// facade: ring sink via Config.Tracer, then profile aggregation.
func TestFacadeTracing(t *testing.T) {
	ring := nrl.NewRingTracer(1 << 12)
	sys := nrl.NewSystem(nrl.Config{Procs: 1, Tracer: ring})
	ctr := nrl.NewCounter(sys, "ctr")
	c := sys.Proc(1).Ctx()
	const ops = 5
	for i := 0; i < ops; i++ {
		ctr.Inc(c)
	}
	if ring.Total() == 0 {
		t.Fatal("tracer received no events")
	}
	p := nrl.BuildTraceProfile(ring.Events())
	o := p.PerObject["ctr"]
	if o == nil {
		t.Fatalf("no ctr profile; objects: %v", p.Objects())
	}
	// Each INC is one top-level op plus nested register ops, all folded
	// to the root object.
	if o.Completes < ops {
		t.Errorf("Completes = %d, want >= %d", o.Completes, ops)
	}
	if o.Mem.Ops() == 0 {
		t.Error("no memory primitives attributed to ctr")
	}
	if o.Latency.Count != ops {
		t.Errorf("top-level latency samples = %d, want %d", o.Latency.Count, ops)
	}
}

// TestUntracedPathAllocatesNothing: with Config.Tracer nil, the memory
// shorthands must not construct events or allocate at all — tracing off
// means zero cost beyond a nil check.
func TestUntracedPathAllocatesNothing(t *testing.T) {
	sys := nrl.NewSystem(nrl.Config{Procs: 1})
	a := sys.Mem().Alloc("x", 0)
	c := sys.Proc(1).Ctx()
	allocs := testing.AllocsPerRun(1000, func() {
		c.Write(a, 1)
		c.Read(a)
		c.CAS(a, 1, 2)
		c.FAA(a, 1)
		c.Flush(a)
		c.Fence()
	})
	if allocs != 0 {
		t.Errorf("untraced memory shorthands allocate %.1f times per run, want 0", allocs)
	}
}

// TestFacadeDurableStorage drives the file-backed persistence surface
// through the facade: open a store, run a recoverable counter over a
// backed ADR memory (every mutation commits through the backend),
// reopen in a second incarnation and observe the durable state — plus
// the typed error surface.
func TestFacadeDurableStorage(t *testing.T) {
	dir := t.TempDir()

	f, err := nrl.OpenPersistFile(dir, nrl.PersistOptions{})
	if err != nil {
		t.Fatalf("OpenPersistFile: %v", err)
	}
	mem := nrl.NewMemory(nrl.WithMode(nrl.ADR), nrl.WithBackend(f))
	sys := nrl.NewSystem(nrl.Config{Procs: 1, Mem: mem})
	ctr := nrl.NewCounter(sys, "ctr")
	sys.Go(1, func(c *nrl.Ctx) {
		for i := 0; i < 3; i++ {
			ctr.Inc(c)
		}
	})
	sys.Wait()
	if err := mem.Err(); err != nil {
		t.Fatalf("memory degraded: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Second incarnation: same allocation order, recovered state.
	g, err := nrl.OpenPersistFile(dir, nrl.PersistOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer g.Close()
	if rep := g.Report(); rep.Valid == 0 {
		t.Fatalf("recovery scan found no valid pages: %+v", rep)
	}
	mem2 := nrl.NewMemory(nrl.WithMode(nrl.ADR), nrl.WithBackend(g))
	sys2 := nrl.NewSystem(nrl.Config{Procs: 1, Mem: mem2})
	ctr2 := nrl.NewCounter(sys2, "ctr")
	var got uint64
	sys2.Go(1, func(c *nrl.Ctx) { got = ctr2.Read(c) })
	sys2.Wait()
	if got != 3 {
		t.Fatalf("recovered counter = %d, want 3", got)
	}

	// The typed error surface is part of the public contract.
	var de *nrl.DegradedError
	if errors.As(nrl.ErrDegraded, &de) {
		t.Fatal("bare sentinel must not match *DegradedError")
	}
	if !errors.Is(&nrl.CorruptError{Reason: "x"}, nrl.ErrCorrupt) {
		t.Fatal("CorruptError must match ErrCorrupt")
	}
}
