// Package nrl is a Go implementation of Nesting-Safe Recoverable
// Linearizability (Attiya, Ben-Baruch, Hendler, PODC 2018): an abstract
// individual-process crash-recovery model for non-volatile memory, the
// NRL correctness condition, nesting-safe recoverable base objects
// (read/write register, CAS, test-and-set), and modular constructions on
// top of them (counter, fetch-and-add, max-register, stack).
//
// The package is a facade: it re-exports the building blocks from the
// internal packages so that applications read naturally.
//
//	sys := nrl.NewSystem(nrl.Config{Procs: 4, Recorder: nrl.NewRecorder()})
//	ctr := nrl.NewCounter(sys, "ctr")
//	sys.Go(1, func(c *nrl.Ctx) { ctr.Inc(c) })
//	sys.Wait()
//
// See DESIGN.md for the model, the substitution decisions and the
// experiment index, and EXPERIMENTS.md for reproduction results.
package nrl

import (
	"nrl/internal/chaos"
	"nrl/internal/core"
	"nrl/internal/harness"
	"nrl/internal/history"
	"nrl/internal/linearize"
	"nrl/internal/nvm"
	"nrl/internal/objects"
	"nrl/internal/persist"
	"nrl/internal/proc"
	"nrl/internal/rme"
	"nrl/internal/spec"
	"nrl/internal/trace"
	"nrl/internal/universal"
)

// Core model types.
type (
	// System is the crash-recovery system: processes + NVRAM + scheduler
	// + crash injector + history recorder.
	System = proc.System
	// Config configures a System.
	Config = proc.Config
	// Ctx is the per-process execution context.
	Ctx = proc.Ctx
	// Operation is a recoverable operation (a resumable line machine).
	Operation = proc.Operation
	// OpInfo describes an Operation.
	OpInfo = proc.OpInfo
	// Injector decides where processes crash.
	Injector = proc.Injector
	// CrashPoint describes a potential crash site.
	CrashPoint = proc.CrashPoint
	// Scheduler controls interleaving.
	Scheduler = proc.Scheduler
	// Picker chooses the next process under the controlled scheduler.
	Picker = proc.Picker
	// Memory is the simulated NVRAM.
	Memory = nvm.Memory
	// Addr addresses one NVRAM word.
	Addr = nvm.Addr
	// History is a recorded operation history.
	History = history.History
	// Recorder collects history steps.
	Recorder = history.Recorder
	// Model is a sequential specification.
	Model = spec.Model
	// ModelFor resolves the model of an object by name.
	ModelFor = linearize.ModelFor
)

// Tracing and profiling (see internal/trace and DESIGN.md §Observability).
type (
	// Tracer receives structured trace events; install one via
	// Config.Tracer to record every operation lifecycle transition and
	// NVRAM primitive of a run.
	Tracer = trace.Tracer
	// TraceEvent is one structured trace event.
	TraceEvent = trace.Event
	// TraceKind discriminates trace events (invoke, crash, mem-cas, ...).
	TraceKind = trace.Kind
	// RingTracer keeps the last N events in memory (overwrite-oldest).
	RingTracer = trace.Ring
	// JSONLTracer streams events to an io.Writer, one JSON object per
	// line.
	JSONLTracer = trace.JSONL
	// NopTracer discards events. It is normalized to nil at install time,
	// so it costs exactly as much as no tracer at all.
	NopTracer = trace.Nop
	// MultiTracer fans events out to several sinks.
	MultiTracer = trace.Multi
	// TraceProfile aggregates a trace into per-object and per-process
	// latency, memory-traffic and recovery statistics.
	TraceProfile = trace.Profile
)

// Recoverable objects (the paper's algorithms and the extensions).
type (
	// Register is the recoverable read/write register (Algorithm 1).
	Register = core.Register
	// CASObject is the recoverable compare-and-swap object (Algorithm 2).
	CASObject = core.CASObject
	// TAS is the recoverable test-and-set object (Algorithm 3).
	TAS = core.TAS
	// Counter is the recoverable counter (Algorithm 4).
	Counter = objects.Counter
	// FAA is the recoverable fetch-and-add extension.
	FAA = objects.FAA
	// MaxRegister is the recoverable max-register extension.
	MaxRegister = objects.MaxRegister
	// Stack is the recoverable stack extension.
	Stack = objects.Stack
	// Queue is the recoverable FIFO queue extension.
	Queue = objects.Queue
	// Lock is the recoverable mutual-exclusion ticket lock extension.
	Lock = rme.Lock
	// Universal is the recoverable universal construction: any
	// deterministic sequential specification becomes an NRL object whose
	// responses are recovered by replaying a durable operation log.
	Universal = universal.Object
	// WFUniversal is the wait-free variant of the universal construction
	// (Herlihy-style turn-based helping).
	WFUniversal = universal.WFObject
)

// Constructors and helpers, re-exported.
var (
	// NewSystem creates a crash-recovery system.
	NewSystem = proc.NewSystem
	// NewRecorder creates a history recorder.
	NewRecorder = history.NewRecorder
	// NewMemory creates a simulated NVRAM (see nvm options).
	NewMemory = nvm.New
	// NewControlled creates the deterministic scheduler.
	NewControlled = proc.NewControlled
	// RandomPicker returns a seeded random scheduling picker.
	RandomPicker = proc.RandomPicker
	// RoundRobinPicker returns a round-robin picker.
	RoundRobinPicker = proc.RoundRobinPicker
	// ScriptPicker returns a scripted picker.
	ScriptPicker = proc.ScriptPicker

	// NewRingTracer creates an in-memory ring sink holding the last n
	// events (n <= 0 applies a default capacity).
	NewRingTracer = trace.NewRing
	// NewJSONLTracer creates a buffered JSONL sink over an io.Writer.
	NewJSONLTracer = trace.NewJSONL
	// BuildTraceProfile aggregates recorded events into a TraceProfile.
	BuildTraceProfile = trace.Build

	// NewRegister creates a recoverable register (Algorithm 1).
	NewRegister = core.NewRegister
	// NewCASObject creates a recoverable CAS object (Algorithm 2).
	NewCASObject = core.NewCASObject
	// NewTAS creates a recoverable test-and-set object (Algorithm 3).
	NewTAS = core.NewTAS
	// NewTASReadableBase creates the footnote-3 TAS variant (readable
	// base t&s instead of a doorway).
	NewTASReadableBase = core.NewTASReadableBase
	// NewCounter creates a recoverable counter (Algorithm 4).
	NewCounter = objects.NewCounter
	// NewFAA creates a recoverable fetch-and-add object.
	NewFAA = objects.NewFAA
	// NewMaxRegister creates a recoverable max-register.
	NewMaxRegister = objects.NewMaxRegister
	// NewStack creates a recoverable stack with the given capacity.
	NewStack = objects.NewStack
	// NewQueue creates a recoverable FIFO queue with the given capacity.
	NewQueue = objects.NewQueue
	// NewLock creates a recoverable mutual-exclusion ticket lock.
	NewLock = rme.NewLock
	// NewUniversal creates a recoverable object from any sequential
	// specification (the recoverable universal construction).
	NewUniversal = universal.New
	// NewWaitFreeUniversal creates the wait-free variant: every
	// invocation completes in a bounded number of its own steps, crashes
	// included, via turn-based helping.
	NewWaitFreeUniversal = universal.NewWaitFree

	// Distinct packs (pid, seq, payload) into a globally distinct
	// register value (Algorithm 1 requires distinct written values).
	Distinct = core.Distinct
	// DistinctCAS packs (pid, seq, payload) into a CAS-object value.
	DistinctCAS = core.DistinctCAS

	// CheckNRL verifies Definition 4 against a recorded history.
	CheckNRL = linearize.CheckNRL
	// CheckLinearizable verifies Definition 2 against a crash-free
	// history.
	CheckLinearizable = linearize.Check
)

// Crash injectors, re-exported.
type (
	// Never never crashes (the default).
	Never = proc.Never
	// AtLine crashes a process at a specific pseudo-code line, once.
	AtLine = proc.AtLine
	// AtStep crashes a process at a specific step count, once.
	AtStep = proc.AtStep
	// RandomCrash crashes each step with a fixed probability, bounded.
	RandomCrash = proc.Random
	// MultiInjector combines injectors.
	MultiInjector = proc.Multi
)

// Chaos campaigns and the livelock watchdog (see internal/chaos and
// DESIGN.md §Adversarial campaigns).
type (
	// ChaosConfig describes a coverage-guided crash campaign.
	ChaosConfig = chaos.Config
	// ChaosResult summarises a campaign.
	ChaosResult = chaos.Result
	// ChaosFailure is one shrunk, replayable NRL violation.
	ChaosFailure = chaos.Failure
	// ChaosCoverage is the campaign-wide crash-coordinate table.
	ChaosCoverage = chaos.Coverage
	// GuidedInjector biases crashes toward never-crashed coordinates.
	GuidedInjector = chaos.Guided
	// StagedInjector fires on the k-th point matching a target predicate.
	StagedInjector = chaos.Staged
	// TargetPredicate selects the crash region of a targeted campaign.
	TargetPredicate = chaos.Predicate
	// CrashSite is one replayable (process, per-process step) placement.
	CrashSite = chaos.CrashSite
	// Workload is a named registry entry shared by the check, sweep and
	// chaos CLIs.
	Workload = harness.Workload
	// StuckReport is the livelock watchdog's structured diagnosis: who is
	// parked in which Await, who they wait on, and whether progress is
	// still possible.
	StuckReport = proc.StuckReport
	// StuckError wraps a StuckReport as the panic/failure value replacing
	// the old raw await-budget panic; recover it with errors.As.
	StuckError = proc.StuckError
	// AwaitInfo is one parked process inside a StuckReport.
	AwaitInfo = proc.AwaitInfo
	// ArityError is the typed failure of an invocation exceeding the
	// frame arena's MaxOpArgs inline-argument bound (DESIGN.md §13);
	// recover it with errors.As, or take it directly from Ctx.TryInvoke.
	ArityError = proc.ArityError
	// DepthError is the typed failure of an invocation nesting past the
	// frame arena's MaxNestingDepth bound; recover it with errors.As, or
	// take it directly from Ctx.TryInvoke.
	DepthError = proc.DepthError
)

// Frame-arena bounds (DESIGN.md §13), re-exported: every process stores
// its pending recoverable operations in a fixed arena of MaxNestingDepth
// frames, each carrying at most MaxOpArgs inline argument words — the
// zero-allocation backing of the uncontended op hot path.
const (
	// MaxNestingDepth is the arena's depth bound k: the deepest chain of
	// nested recoverable operations a process may have pending.
	MaxNestingDepth = proc.MaxNestingDepth
	// MaxOpArgs is the arity bound: the number of argument words a frame
	// stores inline.
	MaxOpArgs = proc.MaxOpArgs
)

// Chaos constructors and helpers, re-exported.
var (
	// RunChaos executes a coverage-guided crash campaign.
	RunChaos = chaos.Run
	// ReplayChaos re-executes a (seed, sites) reproducer.
	ReplayChaos = chaos.Replay
	// NewGuidedInjector creates the coverage-guided injector.
	NewGuidedInjector = chaos.NewGuided
	// NewChaosCoverage creates an empty coverage table.
	NewChaosCoverage = chaos.NewCoverage
	// ParseTarget compiles a target expression ("recovery&depth>=2").
	ParseTarget = chaos.ParseTarget
	// ParseCrashSites parses the "p1@12,p2@40" reproducer syntax.
	ParseCrashSites = chaos.ParseSites
	// FormatCrashSites renders sites in the reproducer syntax.
	FormatCrashSites = chaos.FormatSites
	// WorkloadByName resolves a registry workload.
	WorkloadByName = harness.WorkloadByName
	// SplitSeed derives an independent seed stream (splitmix64).
	SplitSeed = proc.SplitSeed
	// NewRandomCrash creates a Random injector with an injected source,
	// for reproducible multi-stream campaigns.
	NewRandomCrash = proc.NewRandom

	// CheckNRLBudget is CheckNRL with a bounded WGL search; it returns an
	// error wrapping ErrSearchBudget when the bound is hit.
	CheckNRLBudget = linearize.CheckNRLBudget
)

// ErrSearchBudget is returned (wrapped) by the budgeted checkers when the
// WGL search exceeds its node budget.
var ErrSearchBudget = linearize.ErrSearchBudget

// DefaultCheckBudget is the WGL node budget the chaos campaigns settled
// on; commands pass it to CheckNRLBudget so a wide history degrades
// into an ErrSearchBudget verdict instead of hanging the tool.
const DefaultCheckBudget = chaos.DefaultCheckBudget

// CheckWindowed is CheckNRLBudget with the campaigns' sound degradation:
// on budget exhaustion it checks successively shorter prefixes and
// reports whether the verdict is partial.
var CheckWindowed = chaos.CheckWindowed

// Empty is the response of Stack.Pop on an empty stack.
const Empty = objects.Empty

// Durable storage: the file-backed persistence backend and the memory's
// degradation contract (see internal/persist and DESIGN.md §5b).
type (
	// Backend turns simulated persistence (Flush/Fence) into real
	// storage operations; install one with WithBackend.
	Backend = nvm.Backend
	// WordUpdate is one word of a backend commit batch.
	WordUpdate = nvm.WordUpdate
	// PersistPhase identifies a station of the persistence state
	// machine (dirty, flushing, fenced, mid-commit); observe the
	// transitions with WithPhaseHook.
	PersistPhase = nvm.Phase
	// DegradedError is the sticky typed error a memory or store carries
	// after exhausting its storage-failure retries; errors.Is matches
	// ErrDegraded, errors.As recovers the cause.
	DegradedError = nvm.DegradedError
	// PersistFile is the file-backed durable backend: checksummed
	// pages, a write-ahead commit log, torn-write repair on recovery.
	PersistFile = persist.File
	// PersistOptions configures opening a PersistFile.
	PersistOptions = persist.Options
	// RecoveryReport summarises a PersistFile's open-time recovery
	// scan.
	RecoveryReport = persist.RecoveryReport
	// CorruptError reports unrepairable storage damage; errors.Is
	// matches ErrCorrupt.
	CorruptError = persist.CorruptError
)

// Persistence phases, storage errors and constructors, re-exported.
var (
	// ErrDegraded is the sentinel matched by a degraded memory's or
	// store's errors.
	ErrDegraded = nvm.ErrDegraded
	// ErrCorrupt is the sentinel matched by unrepairable-corruption
	// errors from OpenPersistFile.
	ErrCorrupt = persist.ErrCorrupt

	// OpenPersistFile opens (creating or recovering) a file-backed
	// store directory.
	OpenPersistFile = persist.Open
	// WithBackend makes a Memory persist through a Backend: Fence
	// commits the flushed words to storage before the simulated durable
	// state advances.
	WithBackend = nvm.WithBackend
	// WithPhaseHook observes persistence-phase transitions (the kill
	// harness uses this to report where a crash landed).
	WithPhaseHook = nvm.WithPhaseHook
	// WithMode selects the persistence mode of a new Memory.
	WithMode = nvm.WithMode
)

// Persistence modes and phases, re-exported as constants.
const (
	// ADR models Asynchronous DRAM Refresh: every store is durable (the
	// paper's model).
	ADR = nvm.ADR
	// BufferedMode models write-back persistence: stores need explicit
	// Flush and Fence to become durable.
	BufferedMode = nvm.Buffered

	// PhaseIdle through PhaseMidCommit are the stations of the
	// persistence state machine (DESIGN.md §5b).
	PhaseIdle      = nvm.PhaseIdle
	PhaseDirty     = nvm.PhaseDirty
	PhaseFlushing  = nvm.PhaseFlushing
	PhaseFenced    = nvm.PhaseFenced
	PhaseMidCommit = nvm.PhaseMidCommit
)

// Real-crash kill harness (see internal/chaos and cmd/nrlchaos -real).
type (
	// KillConfig configures a real process-kill campaign.
	KillConfig = chaos.KillConfig
	// KillResult summarises a kill campaign.
	KillResult = chaos.KillResult
	// KillRound records one worker incarnation.
	KillRound = chaos.KillRound
	// KillWorkerConfig configures one kill-harness worker incarnation.
	KillWorkerConfig = chaos.KillWorkerConfig
	// PhaseCoverage tabulates which persistence phases kills landed in.
	PhaseCoverage = chaos.PhaseCoverage
)

// Kill-harness entry points, re-exported.
var (
	// RunKillCampaign SIGKILLs worker processes at seeded random points
	// and verifies every restart recovers an NRL-consistent state.
	RunKillCampaign = chaos.RunKillCampaign
	// RunKillWorker runs one worker incarnation (call from a subprocess
	// entry point; see cmd/nrlchaos -realworker).
	RunKillWorker = chaos.RunKillWorker
	// NewPhaseCoverage creates an empty phase-coverage table.
	NewPhaseCoverage = chaos.NewPhaseCoverage
)

// Models builds a ModelFor that resolves both the objects the caller
// names explicitly and, by naming convention, the recoverable base
// objects nested inside this package's composite objects:
//
//	<name>.R[i]                      — registers inside a Counter
//	<name>.cas, .top, .head, .tail   — CAS objects inside FAA,
//	                                   MaxRegister, Stack and Queue
//	<name>.alloc, <name>.next        — FAA objects inside Stack, Queue
//	                                   and Lock
func Models(explicit map[string]Model) ModelFor {
	return linearize.ConventionModels(explicit)
}

// Spec models, re-exported for use with Models.
type (
	// RegisterModel is the sequential specification of a register.
	RegisterModel = spec.Register
	// CASModel is the sequential specification of a CAS object.
	CASModel = spec.CAS
	// TASModel is the sequential specification of a TAS object.
	TASModel = spec.TAS
	// CounterModel is the sequential specification of a counter.
	CounterModel = spec.Counter
	// FAAModel is the sequential specification of a fetch-and-add object.
	FAAModel = spec.FAA
	// MaxRegisterModel is the sequential specification of a max-register.
	MaxRegisterModel = spec.MaxRegister
	// StackModel is the sequential specification of a stack.
	StackModel = spec.Stack
	// QueueModel is the sequential specification of a FIFO queue.
	QueueModel = spec.Queue
	// MutexModel is the sequential specification of a ticket lock.
	MutexModel = spec.Mutex
)
