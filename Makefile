GO ?= go

.PHONY: all build test race vet nrlvet doclint lint bench bench-check microbench golden chaos crash replchaos replay

all: lint build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# The repo's own static-discipline suite (DESIGN.md §8, §12):
# persist/fence ordering, recovery purity, nrl:persist-before lattices,
# nesting-safe recovery-state access, the zero-alloc hot-path gate,
# trace attribution, budgeted-checker conventions.
nrlvet:
	$(GO) run ./cmd/nrlvet ./...

# Godoc hygiene on its own: go vet plus only the missing-doc-comment
# analyzer (the full suite runs it too; this is the fast loop while
# documenting).
doclint: vet
	$(GO) run ./cmd/nrlvet -a doccomment ./...

# Everything CI's lint job runs: go vet, the nrlvet suite, and the race
# detector over the whole module.
lint: vet nrlvet race

# Regenerate the committed performance baselines (BENCH_nvm.json,
# BENCH_objects.json, BENCH_persist.json — schema nrl-bench/1, see
# internal/bench). Run on a quiet machine and commit the result when
# performance changes on purpose; CI gates against these files via
# bench-check.
bench:
	$(GO) run ./cmd/nrlbench -json .

# Re-run the suites into a scratch directory and gate against the
# committed baselines (>15% ns/op growth, a new allocation, or a
# vanished benchmark fails), then hold the flight-recorder rows to their
# overhead budget and the objects suite to its absolute allocs-per-op
# caps (0 per row since the frame-arena refactor — the absolute gate
# needs no baseline, so an allocating baseline can never grandfather an
# allocation in) within the fresh report.
bench-check:
	rm -rf bench-out && mkdir -p bench-out
	$(GO) run ./cmd/nrlbench -json bench-out
	$(GO) run ./cmd/nrlbench -compare BENCH_nvm.json bench-out/BENCH_nvm.json
	$(GO) run ./cmd/nrlbench -compare BENCH_objects.json bench-out/BENCH_objects.json
	$(GO) run ./cmd/nrlbench -compare BENCH_persist.json bench-out/BENCH_persist.json
	$(GO) run ./cmd/nrlbench -overhead bench-out/BENCH_objects.json
	$(GO) run ./cmd/nrlbench -alloccap bench-out/BENCH_objects.json

# The raw go-test microbenchmarks (bench_test.go) for interactive work;
# the committed BENCH_*.json baselines come from `make bench` instead.
microbench:
	$(GO) test -bench . -benchtime 1000x -run '^$$' .

# Regenerate the golden files of the CLI tests (after an intentional
# output change).
golden:
	$(GO) test ./cmd/nrltrace/ ./cmd/nrlstat/ ./cmd/nrlchaos/ ./cmd/nrlcheck/ ./cmd/nrlsweep/ ./cmd/nrlvet/ -update

# Seeded coverage-guided crash campaign over every real workload (the CI
# smoke; raise -runs for a deeper hunt).
chaos:
	$(GO) run ./cmd/nrlchaos -runs 25 -seed 1

# Seeded real-crash campaign: worker processes over the file-backed
# store, SIGKILLed at random points, every restart verified (the CI
# smoke; the 200-round acceptance run is TestKillCampaign200Rounds).
# The store directory and the campaign's schedule trace survive in
# crash-artifacts/ for inspection — CI uploads both when the campaign
# fails, and `nrlchaos -real -replaytrace crash-artifacts/schedule.jsonl`
# re-executes the exact kill schedule.
crash:
	mkdir -p crash-artifacts
	$(GO) run ./cmd/nrlchaos -real -rounds 25 -seed 1 -dir crash-artifacts/store -record crash-artifacts/schedule.jsonl

# Seeded replica-fault kill campaign: a three-member replica set driven
# by SIGKILLed workers, one replica directory wiped, corrupted, or
# disk-faulted per round, every recovery verified and failovers
# required to promote (the CI smoke; the 200-round acceptance run is
# TestReplKillCampaign200Rounds). The set root survives in
# repl-artifacts/ for inspection — `nrlstat forensics
# repl-artifacts/set` decodes it — and CI uploads it on failure.
replchaos:
	mkdir -p repl-artifacts
	$(GO) run ./cmd/nrlrepl chaos -rounds 25 -seed 1 -root repl-artifacts/set -keep -record repl-artifacts/schedule.jsonl

# Replay the committed crash-regression corpus
# (internal/chaos/testdata/regressions/*.jsonl): every minimized
# schedule trace is re-executed in-process and must reproduce its
# recorded verdict exactly. `go test ./...` runs this too
# (TestRegressionCorpus); this is the explicit loop for bisecting a
# drifted trace.
replay:
	$(GO) test ./internal/chaos -run 'TestRegressionCorpus|TestReplayTrace' -count=1 -v
