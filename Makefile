GO ?= go

.PHONY: all build test race vet bench golden

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench . -benchtime 1000x -run '^$$' .

# Regenerate the golden files of the CLI tests (after an intentional
# output change).
golden:
	$(GO) test ./cmd/nrltrace/ ./cmd/nrlstat/ -update
