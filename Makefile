GO ?= go

.PHONY: all build test race vet bench golden chaos crash

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench . -benchtime 1000x -run '^$$' .

# Regenerate the golden files of the CLI tests (after an intentional
# output change).
golden:
	$(GO) test ./cmd/nrltrace/ ./cmd/nrlstat/ ./cmd/nrlchaos/ ./cmd/nrlcheck/ ./cmd/nrlsweep/ -update

# Seeded coverage-guided crash campaign over every real workload (the CI
# smoke; raise -runs for a deeper hunt).
chaos:
	$(GO) run ./cmd/nrlchaos -runs 25 -seed 1

# Seeded real-crash campaign: worker processes over the file-backed
# store, SIGKILLed at random points, every restart verified (the CI
# smoke; the 200-round acceptance run is TestKillCampaign200Rounds).
# The store directory survives in crash-artifacts/ for inspection —
# CI uploads it when the campaign fails.
crash:
	$(GO) run ./cmd/nrlchaos -real -rounds 25 -seed 1 -dir crash-artifacts/store
