GO ?= go

.PHONY: all build test race vet nrlvet lint bench golden chaos crash

all: lint build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

vet:
	$(GO) vet ./...

# The repo's own static-discipline suite (DESIGN.md §8): persist/fence
# ordering, recovery purity, nrl:persist-before lattices, trace
# attribution, budgeted-checker conventions.
nrlvet:
	$(GO) run ./cmd/nrlvet ./...

# Everything CI's lint job runs: go vet, the nrlvet suite, and the race
# detector over the internal packages.
lint: vet nrlvet race

bench:
	$(GO) test -bench . -benchtime 1000x -run '^$$' .

# Regenerate the golden files of the CLI tests (after an intentional
# output change).
golden:
	$(GO) test ./cmd/nrltrace/ ./cmd/nrlstat/ ./cmd/nrlchaos/ ./cmd/nrlcheck/ ./cmd/nrlsweep/ ./cmd/nrlvet/ -update

# Seeded coverage-guided crash campaign over every real workload (the CI
# smoke; raise -runs for a deeper hunt).
chaos:
	$(GO) run ./cmd/nrlchaos -runs 25 -seed 1

# Seeded real-crash campaign: worker processes over the file-backed
# store, SIGKILLed at random points, every restart verified (the CI
# smoke; the 200-round acceptance run is TestKillCampaign200Rounds).
# The store directory survives in crash-artifacts/ for inspection —
# CI uploads it when the campaign fails.
crash:
	$(GO) run ./cmd/nrlchaos -real -rounds 25 -seed 1 -dir crash-artifacts/store
