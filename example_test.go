package nrl_test

import (
	"fmt"

	"nrl"
)

// ExampleCounter shows the paper's Algorithm 4 counter surviving injected
// crashes with exactly-once increments, and the history machine-checking
// against nesting-safe recoverable linearizability (Definition 4).
func ExampleCounter() {
	rec := nrl.NewRecorder()
	inj := &nrl.RandomCrash{Rate: 0.02, Seed: 2018, MaxCrashes: 10}
	sys := nrl.NewSystem(nrl.Config{Procs: 2, Recorder: rec, Injector: inj})

	ctr := nrl.NewCounter(sys, "ctr")
	for p := 1; p <= 2; p++ {
		sys.Go(p, func(c *nrl.Ctx) {
			for i := 0; i < 25; i++ {
				ctr.Inc(c)
			}
		})
	}
	sys.Wait()

	fmt.Println("counter:", ctr.Read(sys.Proc(1).Ctx()))
	models := nrl.Models(map[string]nrl.Model{"ctr": nrl.CounterModel{}})
	fmt.Println("NRL:", nrl.CheckNRL(models, rec.History()) == nil)
	// Output:
	// counter: 50
	// NRL: true
}

// ExampleTAS elects a unique winner among crashing contenders using the
// paper's Algorithm 3.
func ExampleTAS() {
	sys := nrl.NewSystem(nrl.Config{
		Procs:     3,
		Injector:  &nrl.RandomCrash{Rate: 0.05, Seed: 7, MaxCrashes: 3},
		Scheduler: nrl.NewControlled(nrl.RandomPicker(7)),
	})
	tas := nrl.NewTAS(sys, "t")
	winners := 0
	bodies := make(map[int]func(*nrl.Ctx))
	for p := 1; p <= 3; p++ {
		bodies[p] = func(c *nrl.Ctx) {
			if tas.TestAndSet(c) == 0 {
				winners++
			}
		}
	}
	sys.Run(bodies)
	fmt.Println("winners:", winners)
	// Output:
	// winners: 1
}

// ExampleAtLine demonstrates surgical crash injection: crash process 1
// exactly at line 4 of the register WRITE (after the primitive write),
// and observe the recovery completing the operation.
func ExampleAtLine() {
	rec := nrl.NewRecorder()
	inj := &nrl.AtLine{Proc: 1, Obj: "x", Op: "WRITE", Line: 5}
	sys := nrl.NewSystem(nrl.Config{Procs: 1, Recorder: rec, Injector: inj})

	reg := nrl.NewRegister(sys, "x", 0)
	c := sys.Proc(1).Ctx()
	reg.Write(c, 42)

	fmt.Println("value:", reg.Read(c))
	fmt.Println("crashes:", sys.Proc(1).Crashes())
	// Output:
	// value: 42
	// crashes: 1
}
