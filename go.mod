module nrl

go 1.22
