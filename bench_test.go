// Benchmarks regenerating the experiment suite of DESIGN.md Section 5
// (E1–E9) as testing.B benchmarks. cmd/nrlbench renders the same
// workloads as tables; EXPERIMENTS.md records the measured shapes.
package nrl_test

import (
	"fmt"
	"io"
	"sync"
	"testing"

	"nrl"
	"nrl/internal/baseline"
	"nrl/internal/core"
	"nrl/internal/nvm"
	"nrl/internal/objects"
	"nrl/internal/proc"
	"nrl/internal/rme"
	"nrl/internal/spec"
	"nrl/internal/trace"
)

func benchSys(n int) *proc.System {
	return proc.NewSystem(proc.Config{Procs: n})
}

// --- E1: recoverable vs baseline primitive cost -------------------------

func BenchmarkE1_Read_Baseline(b *testing.B) {
	sys := benchSys(1)
	r := baseline.NewRegister(sys, "r", 0)
	c := sys.Proc(1).Ctx()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Read(c)
	}
}

func BenchmarkE1_Read_Recoverable(b *testing.B) {
	sys := benchSys(1)
	r := core.NewRegister(sys, "r", 0)
	c := sys.Proc(1).Ctx()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Read(c)
	}
}

func BenchmarkE1_Write_Baseline(b *testing.B) {
	sys := benchSys(1)
	r := baseline.NewRegister(sys, "r", 0)
	c := sys.Proc(1).Ctx()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Write(c, uint64(i))
	}
}

func BenchmarkE1_Write_Recoverable(b *testing.B) {
	sys := benchSys(1)
	r := core.NewRegister(sys, "r", 0)
	c := sys.Proc(1).Ctx()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Write(c, uint64(i)+1) // distinct values
	}
}

func BenchmarkE1_CAS_Baseline(b *testing.B) {
	sys := benchSys(1)
	o := baseline.NewCAS(sys, "c", 0)
	c := sys.Proc(1).Ctx()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.CompareAndSwap(c, uint64(i), uint64(i)+1)
	}
}

func BenchmarkE1_CAS_Recoverable(b *testing.B) {
	sys := benchSys(1)
	o := core.NewCASObject(sys, "c")
	c := sys.Proc(1).Ctx()
	prev := uint64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next := core.DistinctCAS(1, uint32(i%core.MaxCASSeq)+1, uint32(i))
		o.CAS(c, prev, next)
		prev = next
	}
}

func BenchmarkE1_TAS_Baseline(b *testing.B) {
	sys := benchSys(1)
	objs := make([]*baseline.TAS, b.N)
	for i := range objs {
		objs[i] = baseline.NewTAS(sys, "t")
	}
	c := sys.Proc(1).Ctx()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		objs[i].TestAndSet(c)
	}
}

func BenchmarkE1_TAS_Recoverable(b *testing.B) {
	sys := benchSys(1)
	objs := make([]*core.TAS, b.N)
	for i := range objs {
		objs[i] = core.NewTAS(sys, "t")
	}
	c := sys.Proc(1).Ctx()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		objs[i].TestAndSet(c)
	}
}

func BenchmarkE1_Inc_Baseline(b *testing.B) {
	sys := benchSys(1)
	ctr := baseline.NewCounter(sys, "ctr")
	c := sys.Proc(1).Ctx()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctr.Inc(c)
	}
}

func BenchmarkE1_Inc_Recoverable(b *testing.B) {
	sys := benchSys(1)
	ctr := objects.NewCounter(sys, "ctr")
	c := sys.Proc(1).Ctx()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctr.Inc(c)
	}
}

// --- E2: counter scaling -------------------------------------------------

func BenchmarkE2_CounterInc(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("baseline/procs=%d", n), func(b *testing.B) {
			sys := benchSys(n)
			ctr := baseline.NewCounter(sys, "ctr")
			runParallelOn(b, sys, n, func(c *proc.Ctx, ops int) {
				for i := 0; i < ops; i++ {
					ctr.Inc(c)
				}
			})
		})
		b.Run(fmt.Sprintf("recoverable/procs=%d", n), func(b *testing.B) {
			sys := benchSys(n)
			ctr := objects.NewCounter(sys, "ctr")
			runParallelOn(b, sys, n, func(c *proc.Ctx, ops int) {
				for i := 0; i < ops; i++ {
					ctr.Inc(c)
				}
			})
		})
	}
}

func runParallelOn(b *testing.B, sys *proc.System, n int, body func(c *proc.Ctx, ops int)) {
	b.Helper()
	per := b.N / n
	if per == 0 {
		per = 1
	}
	b.ResetTimer()
	for p := 1; p <= n; p++ {
		sys.Go(p, func(c *proc.Ctx) { body(c, per) })
	}
	sys.Wait()
}

// --- E3: CAS under contention -------------------------------------------

func BenchmarkE3_CASRetryLoop(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("baseline/procs=%d", n), func(b *testing.B) {
			sys := benchSys(n)
			o := baseline.NewCAS(sys, "c", 0)
			runParallelOn(b, sys, n, func(c *proc.Ctx, ops int) {
				for i := 0; i < ops; i++ {
					for {
						cur := o.Read(c)
						if o.CompareAndSwap(c, cur, cur+1) {
							break
						}
					}
				}
			})
		})
		b.Run(fmt.Sprintf("recoverable/procs=%d", n), func(b *testing.B) {
			sys := benchSys(n)
			o := core.NewCASObject(sys, "c")
			runParallelOn(b, sys, n, func(c *proc.Ctx, ops int) {
				p := c.P()
				seq := uint32(0)
				for i := 0; i < ops; i++ {
					for {
						cur := o.Read(c)
						seq++
						if o.CAS(c, cur, core.DistinctCAS(p, seq%core.MaxCASSeq+1, seq)) {
							break
						}
					}
				}
			})
		})
	}
}

// --- E4: crash-rate sweep ------------------------------------------------

func BenchmarkE4_CounterIncUnderCrashes(b *testing.B) {
	for _, rate := range []float64{0, 1e-4, 1e-3, 1e-2} {
		b.Run(fmt.Sprintf("rate=%g", rate), func(b *testing.B) {
			inj := &proc.Random{Rate: rate, Seed: 42}
			sys := proc.NewSystem(proc.Config{Procs: 1, Injector: inj})
			ctr := objects.NewCounter(sys, "ctr")
			c := sys.Proc(1).Ctx()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctr.Inc(c)
			}
			b.StopTimer()
			if got := ctr.Read(c); got != uint64(b.N) {
				b.Fatalf("counter = %d, want %d", got, b.N)
			}
			b.ReportMetric(float64(inj.Crashes())*1000/float64(b.N), "crashes/kop")
		})
	}
}

// --- E5: strictness ablation ----------------------------------------------

func BenchmarkE5_Read_NonStrict(b *testing.B) {
	sys := benchSys(1)
	r := core.NewRegister(sys, "r", 0)
	c := sys.Proc(1).Ctx()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Read(c)
	}
}

func BenchmarkE5_Read_Strict(b *testing.B) {
	sys := benchSys(1)
	r := core.NewRegister(sys, "r", 0)
	c := sys.Proc(1).Ctx()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.StrictRead(c)
	}
}

func BenchmarkE5_CAS_NonStrict(b *testing.B) {
	sys := benchSys(1)
	o := core.NewCASObject(sys, "c")
	c := sys.Proc(1).Ctx()
	prev := uint64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next := core.DistinctCAS(1, uint32(i%core.MaxCASSeq)+1, uint32(i))
		o.CAS(c, prev, next)
		prev = next
	}
}

func BenchmarkE5_CAS_Strict(b *testing.B) {
	sys := benchSys(1)
	o := core.NewCASObject(sys, "c")
	c := sys.Proc(1).Ctx()
	prev := uint64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next := core.DistinctCAS(1, uint32(i%core.MaxCASSeq)+1, uint32(i))
		o.StrictCAS(c, prev, next)
		prev = next
	}
}

// --- E6: TAS recovery blocking cost ---------------------------------------

func BenchmarkE6_TAS(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("crashfree/procs=%d", n), func(b *testing.B) {
			benchTASRounds(b, n, false)
		})
		b.Run(fmt.Sprintf("allcrash/procs=%d", n), func(b *testing.B) {
			benchTASRounds(b, n, true)
		})
	}
}

// benchTASRounds measures whole TAS rounds (all n processes performing
// one T&S each on a fresh object), optionally crashing every process
// right after the critical primitive.
func benchTASRounds(b *testing.B, n int, crash bool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		var inj proc.Injector = proc.Never{}
		if crash {
			var m proc.Multi
			for p := 1; p <= n; p++ {
				m = append(m, &proc.AtLine{Proc: p, Obj: "t", Op: "T&S", Line: 9})
			}
			inj = m
		}
		sys := proc.NewSystem(proc.Config{Procs: n, Injector: inj})
		o := core.NewTAS(sys, "t")
		for p := 1; p <= n; p++ {
			sys.Go(p, func(c *proc.Ctx) { o.TestAndSet(c) })
		}
		sys.Wait()
	}
}

// --- E7: checker cost ------------------------------------------------------

func BenchmarkE7_NRLCheck(b *testing.B) {
	for _, ops := range []int{120, 600, 1500} {
		b.Run(fmt.Sprintf("ops=%d", ops), func(b *testing.B) {
			rec := nrl.NewRecorder()
			inj := &proc.Random{Rate: 0.002, Seed: 1, MaxCrashes: 10}
			sys := proc.NewSystem(proc.Config{Procs: 3, Recorder: rec, Injector: inj})
			ctr := objects.NewCounter(sys, "ctr")
			per := ops / 3
			for p := 1; p <= 3; p++ {
				sys.Go(p, func(c *proc.Ctx) {
					for i := 0; i < per; i++ {
						ctr.Inc(c)
					}
				})
			}
			sys.Wait()
			h := rec.History()
			models := func(obj string) spec.Model {
				if obj == "ctr" {
					return spec.Counter{}
				}
				return spec.Register{}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := nrl.CheckNRL(models, h); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E8: persistence-mode ablation ------------------------------------------

func BenchmarkE8_Write(b *testing.B) {
	modes := []struct {
		name    string
		mode    nvm.Mode
		persist bool
	}{
		{"ADR", nvm.ADR, false},
		{"ADR+persist", nvm.ADR, true},
		{"Buffered", nvm.Buffered, false},
		{"Buffered+persist", nvm.Buffered, true},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			mem := nvm.New(nvm.WithMode(m.mode))
			a := mem.Alloc("x", 0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mem.Write(a, uint64(i))
				if m.persist {
					mem.Persist(a)
				}
			}
		})
	}
}

// --- NVM hot path -----------------------------------------------------------

// benchHeapWords sizes the backing heap of the NVM scaling benchmarks: a
// production-scale word count, so costs that are O(total words) — the
// pre-shard fence scanned the entire word array for flushed words — show
// up as they would in a real system, not amortised away by a toy heap.
const benchHeapWords = 1 << 14

// BenchmarkNVM_BufferedCASPersist is the scaling benchmark of the sharded
// memory: n workers, each owning one word of a benchHeapWords-word heap,
// each repeating the buffered persist discipline (read, CAS, flush,
// fence) with per-process trace attribution. Before the memory was
// sharded every iteration serialized on one global persistence mutex and
// every fence scanned the whole word array; the per-process flush sets
// reduce the fence to the one word the worker actually flushed.
// EXPERIMENTS.md §9 records the before/after.
func BenchmarkNVM_BufferedCASPersist(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("procs=%d", n), func(b *testing.B) {
			mem := nvm.New(nvm.WithMode(nvm.Buffered))
			mem.AllocArray("heap", benchHeapWords, 0)
			addrs := mem.AllocArray("w", n, 0)
			per := b.N / n
			if per == 0 {
				per = 1
			}
			var wg sync.WaitGroup
			b.ResetTimer()
			for p := 1; p <= n; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					at := trace.Attr{P: p}
					a := addrs[p-1]
					for i := 0; i < per; i++ {
						v := mem.ReadAt(a, at)
						mem.CASAt(a, v, v+1, at)
						mem.FlushAt(a, at)
						mem.FenceAt(at)
					}
				}(p)
			}
			wg.Wait()
		})
	}
}

// BenchmarkNVM_BufferedContendedCAS measures n workers hammering one
// shared word (every CAS lands on the same shard, so sharding cannot
// help; this bounds the cost of the per-shard locking itself).
func BenchmarkNVM_BufferedContendedCAS(b *testing.B) {
	for _, n := range []int{1, 8} {
		b.Run(fmt.Sprintf("procs=%d", n), func(b *testing.B) {
			mem := nvm.New(nvm.WithMode(nvm.Buffered))
			a := mem.Alloc("w", 0)
			per := b.N / n
			if per == 0 {
				per = 1
			}
			var wg sync.WaitGroup
			b.ResetTimer()
			for p := 1; p <= n; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					at := trace.Attr{P: p}
					for i := 0; i < per; i++ {
						v := mem.ReadAt(a, at)
						mem.CASAt(a, v, v+1, at)
					}
				}(p)
			}
			wg.Wait()
		})
	}
}

// BenchmarkNVM_UntracedWrite asserts the zero-alloc, branch-only cost of
// the untraced primitive fast path (the nop-tracer guarantee extends from
// the operation layer down to raw memory primitives).
func BenchmarkNVM_UntracedWrite(b *testing.B) {
	for _, mode := range []nvm.Mode{nvm.ADR, nvm.Buffered} {
		b.Run(mode.String(), func(b *testing.B) {
			mem := nvm.New(nvm.WithMode(mode))
			a := mem.Alloc("x", 0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mem.Write(a, uint64(i))
			}
		})
	}
}

// BenchmarkNVM_Alloc measures allocation of fresh words (the growth path:
// chunked slabs must not quadratically re-copy).
func BenchmarkNVM_Alloc(b *testing.B) {
	mem := nvm.New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mem.Alloc("x", 0)
	}
}

// --- tracing overhead -------------------------------------------------------

// BenchmarkTracerOverhead measures the cost the trace layer adds to a
// recoverable counter INC: no tracer at all (the nil fast path), the Nop
// sink (normalized to nil at install, so identical to untraced by
// construction), the ring sink, and JSONL encoding to io.Discard. The
// ring and JSONL rows are the true price of recording; untraced and nop
// must sit within noise of each other.
func BenchmarkTracerOverhead(b *testing.B) {
	bench := func(b *testing.B, tr trace.Tracer) {
		b.Helper()
		sys := proc.NewSystem(proc.Config{Procs: 1, Tracer: tr})
		ctr := objects.NewCounter(sys, "ctr")
		c := sys.Proc(1).Ctx()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctr.Inc(c)
		}
	}
	b.Run("untraced", func(b *testing.B) { bench(b, nil) })
	b.Run("nop", func(b *testing.B) { bench(b, trace.Nop{}) })
	b.Run("ring", func(b *testing.B) { bench(b, trace.NewRing(1<<16)) })
	b.Run("jsonl-discard", func(b *testing.B) { bench(b, trace.NewJSONL(io.Discard)) })
}

// --- extension objects (ablation of the modular constructions) -------------

func BenchmarkExt_FAA_Recoverable(b *testing.B) {
	sys := benchSys(1)
	f := objects.NewFAA(sys, "f")
	c := sys.Proc(1).Ctx()
	if b.N > objects.MaxFAAValue {
		b.Skip("b.N exceeds the FAA payload range")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Add(c, 1)
	}
}

func BenchmarkExt_FAA_Baseline(b *testing.B) {
	sys := benchSys(1)
	f := baseline.NewFAA(sys, "f")
	c := sys.Proc(1).Ctx()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Add(c, 1)
	}
}

func BenchmarkExt_StackPushPop(b *testing.B) {
	sys := benchSys(1)
	capacity := b.N + 16
	if capacity > 1<<20 {
		b.Skip("b.N exceeds the stack arena used for this benchmark")
	}
	s := objects.NewStack(sys, "s", capacity)
	c := sys.Proc(1).Ctx()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Push(c, uint64(i)+1)
		s.Pop(c)
	}
}

func BenchmarkExt_QueueEnqDeq(b *testing.B) {
	sys := benchSys(1)
	capacity := b.N + 16
	if capacity > 1<<20 {
		b.Skip("b.N exceeds the queue arena used for this benchmark")
	}
	q := objects.NewQueue(sys, "q", capacity)
	c := sys.Proc(1).Ctx()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Enqueue(c, uint64(i)+1)
		q.Dequeue(c)
	}
}

func BenchmarkExt_LockAcquireRelease(b *testing.B) {
	sys := benchSys(1)
	l := rme.NewLock(sys, "l")
	c := sys.Proc(1).Ctx()
	if b.N > objects.MaxFAAValue {
		b.Skip("b.N exceeds the ticket range")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Acquire(c)
		l.Release(c)
	}
}

func BenchmarkExt_MaxRegWriteMax(b *testing.B) {
	sys := benchSys(1)
	m := objects.NewMaxRegister(sys, "m")
	c := sys.Proc(1).Ctx()
	if b.N >= objects.MaxRegValue {
		b.Skip("b.N exceeds the max-register range")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.WriteMax(c, uint64(i)+1)
	}
}

func BenchmarkExt_UniversalCounterInc(b *testing.B) {
	sys := benchSys(1)
	capacity := b.N + 16
	if capacity > 1<<17 {
		b.Skip("b.N exceeds the universal log used for this benchmark (O(n) replay)")
	}
	u := nrl.NewUniversal(sys, "u", spec.Counter{}, capacity, []string{"INC"})
	c := sys.Proc(1).Ctx()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.Invoke(c, "INC")
	}
}
