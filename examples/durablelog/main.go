// Command durablelog demonstrates the buffered-persistence extension of
// the NVRAM substrate (DESIGN.md, substitution table): unlike the paper's
// individual-process crash model — where shared memory always survives —
// real persistent-memory systems lose unflushed stores on a power
// failure. The simulated memory's Buffered mode models a write-back
// persistence domain with explicit Flush/Fence, CrashAll models the power
// failure, and the durable package builds objects with the
// persist-before-complete discipline on top.
package main

import (
	"fmt"
	"os"

	"nrl/internal/durable"
	"nrl/internal/nvm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "durablelog:", err)
		os.Exit(1)
	}
}

func run() error {
	mem := nvm.New(nvm.WithMode(nvm.Buffered))
	log := durable.NewLog(mem, "log", 16)

	fmt.Println("appending records 10, 20, 30 (durably)...")
	for _, v := range []uint64{10, 20, 30} {
		log.Append(v)
	}

	// Simulate a crash mid-append: the record lands and is persisted, but
	// power fails before the length word commits — exactly the window the
	// write-ahead ordering protects.
	fmt.Println("appending record 40, power failure before commit...")
	n := log.Len()
	mem.Write(recAddrForDemo(mem), 40) // the record itself (uncommitted)
	mem.CrashAll()
	_ = n

	got := log.Snapshot()
	fmt.Printf("recovered after restart: %v\n", got)
	want := []uint64{10, 20, 30}
	if len(got) != len(want) {
		return fmt.Errorf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("record %d = %d, want %d", i, got[i], want[i])
		}
	}
	fmt.Println("the uncommitted record was correctly discarded; the durable prefix survived")

	// Contrast: without the fence the record itself may be lost.
	mem2 := nvm.New(nvm.WithMode(nvm.Buffered))
	a := mem2.Alloc("x", 0)
	mem2.Write(a, 99)
	//nrl:ignore the missing fence is this example's point: it demonstrates the store being lost
	mem2.Flush(a) // flush without fence: not yet durable
	mem2.CrashAll()
	fmt.Printf("flush-without-fence after power failure: x = %d (store lost, as real hardware allows)\n", mem2.Read(a))

	// The durable register's two-bank scheme: a completed write survives.
	reg := durable.NewRegister(mem2, "r", 1)
	reg.Write(42)
	mem2.CrashAll()
	fmt.Printf("durable register after power failure: %d (completed write survived)\n", reg.Read())

	s := mem.Stats()
	fmt.Printf("memory stats: %d writes, %d flushes, %d fences, %d system crashes\n",
		s.Writes, s.Flushes, s.Fences, s.SystemCrashes)
	return nil
}

// recAddrForDemo allocates a scratch word standing in for the next record
// slot; writing it without persisting demonstrates the loss window.
func recAddrForDemo(mem *nvm.Memory) nvm.Addr {
	return mem.Alloc("scratch", 0)
}
