// Command bank models a small vault/till system on the recoverable stack
// extension: tokens (numbered banknotes) start in a vault stack; teller
// processes move them to a till stack and back, crashing at random points
// — including mid-pop and mid-push, inside the nested recoverable CAS and
// fetch-and-add objects the stack is built from. Because every operation
// satisfies NRL, each interrupted transfer completes exactly once on
// recovery: at the end every banknote exists exactly once across the two
// stacks and the tellers' hands.
package main

import (
	"fmt"
	"os"

	"nrl"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bank:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		tellers   = 3
		notes     = 30
		transfers = 15 // per teller
	)
	rec := nrl.NewRecorder()
	inj := &nrl.RandomCrash{Rate: 0.01, Seed: 7, MaxCrashes: 12}
	sys := nrl.NewSystem(nrl.Config{Procs: tellers, Recorder: rec, Injector: inj})

	vault := nrl.NewStack(sys, "vault", 4096)
	till := nrl.NewStack(sys, "till", 4096)

	// Seed the vault with numbered banknotes.
	c0 := sys.Proc(1).Ctx()
	for i := 1; i <= notes; i++ {
		vault.Push(c0, uint64(i))
	}

	// Tellers move notes vault -> till, and occasionally back.
	for p := 1; p <= tellers; p++ {
		sys.Go(p, func(c *nrl.Ctx) {
			for i := 0; i < transfers; i++ {
				if note := vault.Pop(c); note != nrl.Empty {
					till.Push(c, note)
				}
				if i%3 == 2 {
					if note := till.Pop(c); note != nrl.Empty {
						vault.Push(c, note)
					}
				}
			}
		})
	}
	sys.Wait()

	// Audit: every note must exist exactly once across both stacks.
	seen := make(map[uint64]int, notes)
	count := func(s *nrl.Stack, name string) int {
		n := 0
		for {
			v := s.Pop(c0)
			if v == nrl.Empty {
				return n
			}
			seen[v]++
			n++
		}
	}
	inVault := count(vault, "vault")
	inTill := count(till, "till")

	fmt.Printf("tellers:          %d\n", tellers)
	fmt.Printf("banknotes:        %d\n", notes)
	fmt.Printf("crashes injected: %d\n", inj.Crashes())
	fmt.Printf("final vault/till: %d / %d\n", inVault, inTill)

	if inVault+inTill != notes {
		return fmt.Errorf("audit failed: %d notes accounted for, want %d", inVault+inTill, notes)
	}
	for note := uint64(1); note <= notes; note++ {
		if seen[note] != 1 {
			return fmt.Errorf("audit failed: note %d present %d times", note, seen[note])
		}
	}
	fmt.Println("audit:            ok (no note lost or duplicated)")

	models := nrl.Models(map[string]nrl.Model{
		"vault": nrl.StackModel{},
		"till":  nrl.StackModel{},
	})
	if err := nrl.CheckNRLBudget(models, rec.History(), nrl.DefaultCheckBudget); err != nil {
		return fmt.Errorf("NRL check failed: %w", err)
	}
	fmt.Println("NRL check:        ok")
	return nil
}
