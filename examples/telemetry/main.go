// Command telemetry demonstrates the live observability plane: a
// recoverable-counter workload instrumented with a flight recorder and
// a bounded trace ring, its memory counters, recorder state and trace
// profile exposed as a flat JSON document on an opt-in HTTP endpoint
// (plus /healthz and the pprof family). The example starts the plane on
// a loopback listener, runs the workload, scrapes its own /metrics and
// verifies the document reflects the work done.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"

	"nrl"
	"nrl/internal/flightrec"
	"nrl/internal/telemetry"
	"nrl/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "telemetry:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		procs = 2
		incs  = 25
	)
	frec := flightrec.NewRecorder(flightrec.Options{Slots: 1024})
	ring := trace.NewRing(4096)
	sys := nrl.NewSystem(nrl.Config{Procs: procs, Tracer: ring, FlightRec: frec})

	// The plane is strictly opt-in: nothing serves until we build a mux
	// and listen. Loopback with port 0 keeps the example self-contained.
	reg := telemetry.NewRegistry()
	reg.Register("nvm", telemetry.Memory(sys.Mem()))
	reg.Register("flightrec", telemetry.Recorder(frec))
	reg.Register("trace", telemetry.Ring(ring))
	reg.RegisterHealth("nvm", telemetry.MemoryHealth(sys.Mem()))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	srv := &http.Server{Handler: reg.Mux()}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("telemetry plane listening on %s\n", base)

	ctr := nrl.NewCounter(sys, "ctr")
	for p := 1; p <= procs; p++ {
		sys.Go(p, func(c *nrl.Ctx) {
			for i := 0; i < incs; i++ {
				ctr.Inc(c)
			}
		})
	}
	sys.Wait()

	flat, err := scrape(base + "/metrics")
	if err != nil {
		return err
	}
	fmt.Printf("nvm.ops_total=%v trace.completes=%v flightrec.seq=%v\n",
		flat["nvm.ops_total"], flat["trace.completes"], flat["flightrec.seq"])
	if flat["nvm.ops_total"] == float64(0) {
		return fmt.Errorf("metrics show no memory operations after %d increments", procs*incs)
	}
	// Completes counts nested operations too (the counter's reads and
	// CAS ride on recoverable registers), so at least one per increment.
	if c, _ := flat["trace.completes"].(float64); c < float64(procs*incs) {
		return fmt.Errorf("trace.completes = %v, want >= %d", flat["trace.completes"], procs*incs)
	}
	if flat["flightrec.seq"] == float64(0) {
		return fmt.Errorf("flight recorder saw no records")
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz = %d, want 200", resp.StatusCode)
	}
	fmt.Println("healthz ok; metrics document well-formed")
	return nil
}

func scrape(url string) (map[string]any, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	var flat map[string]any
	if err := json.Unmarshal(body, &flat); err != nil {
		return nil, fmt.Errorf("metrics not JSON: %w", err)
	}
	return flat, nil
}
