package main

import "testing"

// TestRun executes the example end to end; every example self-verifies
// its invariants and returns an error on any violation.
func TestRun(t *testing.T) {
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
