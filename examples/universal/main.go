// Command universal demonstrates the recoverable universal construction:
// hand the library nothing but a sequential specification and get back an
// object satisfying nesting-safe recoverable linearizability. Here a
// priority-free task board (a queue) and a high-water-mark gauge (a
// max-register) are both derived from their specs alone and survive
// injected crashes, with the histories machine-checked.
package main

import (
	"fmt"
	"os"

	"nrl"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "universal:", err)
		os.Exit(1)
	}
}

func run() error {
	rec := nrl.NewRecorder()
	inj := &nrl.RandomCrash{Rate: 0.02, Seed: 3, MaxCrashes: 10}
	sys := nrl.NewSystem(nrl.Config{Procs: 3, Recorder: rec, Injector: inj})

	board := nrl.NewUniversal(sys, "board", nrl.QueueModel{}, 1024, []string{"ENQ", "DEQ"})
	gauge := nrl.NewUniversal(sys, "gauge", nrl.MaxRegisterModel{}, 1024, []string{"WRITEMAX", "READMAX"})

	for p := 1; p <= 3; p++ {
		sys.Go(p, func(c *nrl.Ctx) {
			for i := 0; i < 5; i++ {
				task := uint64(c.P()*100 + i)
				board.Invoke(c, "ENQ", task)
				gauge.Invoke(c, "WRITEMAX", task)
				if i%2 == 1 {
					board.Invoke(c, "DEQ")
				}
			}
		})
	}
	sys.Wait()

	c := sys.Proc(1).Ctx()
	remaining := 0
	for board.Invoke(c, "DEQ") != nrl.Empty {
		remaining++
	}
	high := gauge.Invoke(c, "READMAX")
	fmt.Printf("tasks enqueued:   15\n")
	fmt.Printf("left on board:    %d (9 were worked off mid-run)\n", remaining)
	fmt.Printf("high-water mark:  %d\n", high)
	fmt.Printf("crashes injected: %d\n", inj.Crashes())
	if remaining != 9 || high != 304 {
		return fmt.Errorf("unexpected outcome: remaining=%d high=%d", remaining, high)
	}

	models := nrl.Models(map[string]nrl.Model{
		"board": nrl.QueueModel{},
		"gauge": nrl.MaxRegisterModel{},
	})
	if err := nrl.CheckNRLBudget(models, rec.History(), nrl.DefaultCheckBudget); err != nil {
		return fmt.Errorf("NRL check failed: %w", err)
	}
	fmt.Println("NRL check:        ok (both spec-derived objects)")
	return nil
}
