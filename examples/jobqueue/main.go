// Command jobqueue demonstrates the recoverable FIFO queue and the
// recoverable mutual-exclusion lock together: producers enqueue numbered
// jobs, workers dequeue and record completions under a recoverable lock,
// and an adversary crashes everyone at random points — inside enqueues,
// dequeues, lock acquisitions and the recoverable CAS/FAA operations they
// nest. Every job is processed exactly once.
package main

import (
	"fmt"
	"os"

	"nrl"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "jobqueue:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		producers = 2
		workers   = 2
		jobsPer   = 12
	)
	total := producers * jobsPer
	rec := nrl.NewRecorder()
	inj := &nrl.RandomCrash{Rate: 0.008, Seed: 11, MaxCrashes: 16}
	sys := nrl.NewSystem(nrl.Config{Procs: producers + workers, Recorder: rec, Injector: inj})

	q := nrl.NewQueue(sys, "jobs", 4096)
	lock := nrl.NewLock(sys, "loglock")
	// The completion log: a plain NVRAM region guarded by the recoverable
	// lock (one slot per job, marking who processed it).
	logSlots := sys.Mem().AllocArray("done", total+1, 0)

	for p := 1; p <= producers; p++ {
		sys.Go(p, func(c *nrl.Ctx) {
			for i := 0; i < jobsPer; i++ {
				job := uint64((c.P()-1)*jobsPer + i + 1) // 1..total
				q.Enqueue(c, job)
			}
		})
	}
	for w := 1; w <= workers; w++ {
		sys.Go(producers+w, func(c *nrl.Ctx) {
			idle := 0
			for idle < 200 {
				job := q.Dequeue(c)
				if job == nrl.Empty {
					idle++
					continue
				}
				idle = 0
				// Record the completion under the recoverable lock.
				lock.Acquire(c)
				slot := logSlots[job]
				c.Mem().Write(slot, c.Mem().Read(slot)+1)
				lock.Release(c)
			}
		})
	}
	sys.Wait()

	processed := 0
	for job := 1; job <= total; job++ {
		switch n := sys.Mem().Read(logSlots[job]); n {
		case 1:
			processed++
		case 0:
			// Not yet processed: it must still be in the queue.
		default:
			return fmt.Errorf("job %d processed %d times", job, n)
		}
	}
	// Drain what the workers' idle cutoff left behind.
	c := sys.Proc(1).Ctx()
	left := 0
	for q.Dequeue(c) != nrl.Empty {
		left++
	}
	fmt.Printf("jobs produced:    %d\n", total)
	fmt.Printf("jobs processed:   %d\n", processed)
	fmt.Printf("left in queue:    %d\n", left)
	fmt.Printf("crashes injected: %d\n", inj.Crashes())
	if processed+left != total {
		return fmt.Errorf("jobs lost: %d processed + %d queued != %d", processed, left, total)
	}
	fmt.Println("audit:            ok (every job exactly once)")

	models := nrl.Models(map[string]nrl.Model{
		"jobs":    nrl.QueueModel{},
		"loglock": nrl.MutexModel{},
	})
	if err := nrl.CheckNRLBudget(models, rec.History(), nrl.DefaultCheckBudget); err != nil {
		return fmt.Errorf("NRL check failed: %w", err)
	}
	fmt.Println("NRL check:        ok")
	return nil
}
