// Command election runs one-shot leader election over the paper's
// recoverable test-and-set object (Algorithm 3). Nodes race to become the
// leader while an adversary crashes them at the worst moments — after the
// internal t&s primitive but before the winner declares itself — and the
// blocking recovery protocol still produces exactly one leader. The same
// schedule breaks any wait-free recovery (the paper's Theorem 4; see the
// internal valency package).
package main

import (
	"fmt"
	"os"
	"sync"

	"nrl"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "election:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		nodes  = 5
		rounds = 8
	)
	for round := 0; round < rounds; round++ {
		leader, crashes, err := electionRound(int64(round), nodes)
		if err != nil {
			return fmt.Errorf("round %d: %w", round, err)
		}
		fmt.Printf("round %d: leader = node %d (crashes injected: %d)\n", round, leader, crashes)
	}
	return nil
}

// electionRound runs one election among n nodes with seeded crashes and
// returns the unique leader.
func electionRound(seed int64, n int) (leader, crashes int, err error) {
	rec := nrl.NewRecorder()
	inj := &nrl.RandomCrash{Rate: 0.05, Seed: seed, MaxCrashes: n}
	sys := nrl.NewSystem(nrl.Config{
		Procs:     n,
		Recorder:  rec,
		Injector:  inj,
		Scheduler: nrl.NewControlled(nrl.RandomPicker(seed)),
	})
	tas := nrl.NewTAS(sys, "election")

	var (
		mu      sync.Mutex
		leaders []int
	)
	bodies := make(map[int]func(*nrl.Ctx))
	for p := 1; p <= n; p++ {
		bodies[p] = func(c *nrl.Ctx) {
			if tas.TestAndSet(c) == 0 {
				mu.Lock()
				leaders = append(leaders, c.P())
				mu.Unlock()
			}
		}
	}
	sys.Run(bodies)

	if len(leaders) != 1 {
		return 0, 0, fmt.Errorf("expected exactly one leader, got %v", leaders)
	}
	if w := tas.Winner(sys.Mem()); w != leaders[0] {
		return 0, 0, fmt.Errorf("winner register says %d, leader is %d", w, leaders[0])
	}
	models := func(obj string) nrl.Model { return nrl.TASModel{} }
	if err := nrl.CheckNRLBudget(models, rec.History(), nrl.DefaultCheckBudget); err != nil {
		return 0, 0, fmt.Errorf("NRL check failed: %w", err)
	}
	return leaders[0], inj.Crashes(), nil
}
