// Command quickstart demonstrates the library end to end: a recoverable
// counter (the paper's Algorithm 4) shared by four processes that crash
// at random points — including inside the nested recoverable register
// operations — yet every increment lands exactly once, and the recorded
// history machine-checks against nesting-safe recoverable linearizability
// (Definition 4).
package main

import (
	"fmt"
	"os"

	"nrl"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		procs = 4
		incs  = 50
	)
	rec := nrl.NewRecorder()
	inj := &nrl.RandomCrash{Rate: 0.01, Seed: 2018, MaxCrashes: 20}
	sys := nrl.NewSystem(nrl.Config{Procs: procs, Recorder: rec, Injector: inj})

	ctr := nrl.NewCounter(sys, "ctr")
	for p := 1; p <= procs; p++ {
		sys.Go(p, func(c *nrl.Ctx) {
			for i := 0; i < incs; i++ {
				ctr.Inc(c)
			}
		})
	}
	sys.Wait()

	final := ctr.Read(sys.Proc(1).Ctx())
	fmt.Printf("processes:          %d\n", procs)
	fmt.Printf("increments issued:  %d\n", procs*incs)
	fmt.Printf("crashes injected:   %d\n", inj.Crashes())
	fmt.Printf("final counter:      %d\n", final)
	if final != procs*incs {
		return fmt.Errorf("increment lost or duplicated: got %d, want %d", final, procs*incs)
	}

	h := rec.History()
	fmt.Printf("history steps:      %d\n", h.Len())
	models := nrl.Models(map[string]nrl.Model{"ctr": nrl.CounterModel{}})
	if err := nrl.CheckNRLBudget(models, h, nrl.DefaultCheckBudget); err != nil {
		return fmt.Errorf("NRL check failed: %w", err)
	}
	fmt.Println("NRL check:          ok (history is recoverable well-formed and N(H) is linearizable)")
	return nil
}
