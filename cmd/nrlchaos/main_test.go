package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// golden runs the CLI and compares stdout (and the exit code) against a
// golden file. Campaigns are deterministic — controlled scheduler, seeded
// picker and injector streams, no wall-clock in the output — so the exact
// summaries are reproducible.
func golden(t *testing.T, name string, wantCode int, args ...string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	if code != wantCode {
		t.Fatalf("run(%v) = exit %d, want %d\nstdout:\n%s\nstderr:\n%s",
			args, code, wantCode, out.String(), errOut.String())
	}
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, out.Bytes(), want)
	}
}

// TestCampaignBrokenGolden: the negative control exits 1 and prints the
// failure block with a replayable flag line.
func TestCampaignBrokenGolden(t *testing.T) {
	golden(t, "broken", exitViolation,
		"-workload", "broken", "-procs", "1", "-ops", "2", "-runs", "30", "-seed", "42")
}

// TestCampaignCleanGolden: a real algorithm exits 0 with its coverage
// summary (and full table).
func TestCampaignCleanGolden(t *testing.T) {
	golden(t, "counter", exitClean,
		"-workload", "counter", "-runs", "25", "-seed", "7", "-coverage")
}

// TestCampaignStuckGolden: the stuck strawman exits 2 and prints the
// structured watchdog report instead of panicking.
func TestCampaignStuckGolden(t *testing.T) {
	golden(t, "stuck", exitStuck,
		"-workload", "stuck", "-procs", "1", "-ops", "1", "-runs", "3", "-seed", "3")
}

// TestReplayGolden replays the reproducer printed by the broken campaign
// (seed and site taken from testdata/broken.golden) and exits 1 with the
// violating history.
func TestReplayGolden(t *testing.T) {
	golden(t, "replay", exitViolation,
		"-workload", "broken", "-procs", "1", "-ops", "2",
		"-seed", "6349198060258255764", "-replay", "p1@8")
}

// TestReplayTrace: -trace writes one valid JSON event per line alongside
// the replay verdict.
func TestReplayTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.jsonl")
	var out, errOut bytes.Buffer
	code := run([]string{
		"-workload", "broken", "-procs", "1", "-ops", "2",
		"-seed", "6349198060258255764", "-replay", "p1@8", "-trace", path,
	}, &out, &errOut)
	if code != exitViolation {
		t.Fatalf("exit %d, want %d\n%s%s", code, exitViolation, out.String(), errOut.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(data), []byte("\n"))
	if len(lines) < 10 {
		t.Fatalf("suspiciously small trace: %d lines", len(lines))
	}
	for i, line := range lines {
		var e map[string]any
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", i+1, err)
		}
	}
	if !bytes.Contains(data, []byte(`"crash"`)) {
		t.Error("trace has no crash event despite an injected crash")
	}
}

// TestTargetedCampaign: -target restricts the injector; the recovery
// campaign still completes cleanly on a correct object.
func TestTargetedCampaign(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{
		"-workload", "cas", "-runs", "10", "-seed", "5", "-target", "recovery",
	}, &out, &errOut)
	if code != exitClean {
		t.Fatalf("exit %d, want 0\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "cas") {
		t.Errorf("summary missing workload name:\n%s", out.String())
	}
}

// TestUsageErrors: unknown workload, bad sites, bad target, bad flag all
// exit 3 without touching stdout.
func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-workload", "nope"},
		{"-workload", "counter", "-replay", "zzz"},
		{"-replay", "p1@3"}, // -workload all cannot be replayed
		{"-workload", "counter", "-target", "bogus"},
		{"-bogus"},
		{"-workload", "counter", "-runs", "0"},
	}
	for _, args := range cases {
		var out, errOut bytes.Buffer
		if code := run(args, &out, &errOut); code != exitUsage {
			t.Errorf("run(%v) = exit %d, want %d", args, code, exitUsage)
		}
		if out.Len() != 0 {
			t.Errorf("run(%v) wrote to stdout on a usage error:\n%s", args, out.String())
		}
	}
}
