package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"time"

	"nrl/internal/chaos"
	schedtrace "nrl/internal/chaos/trace"
)

// runReal is the -real campaign: instead of simulated crashes inside
// one process, it SIGKILLs real worker processes (this binary re-run
// with -realworker) running a counter/log workload over the file-backed
// persist store in -dir, and checks every incarnation recovers to an
// NRL-consistent state. Exit codes follow the campaign convention:
// 0 clean, 1 consistency violation.
func runReal(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("nrlchaos -real", flag.ContinueOnError)
	fs.SetOutput(errOut)
	rounds := fs.Int("rounds", 25, "worker incarnations to run (kills included)")
	seed := fs.Int64("seed", 1, "kill-delay schedule seed")
	appends := fs.Int("appends", 40, "log appends per incarnation")
	capacity := fs.Int("capacity", 1<<16, "log capacity in records")
	dir := fs.String("dir", "", "persist store directory (default: a temp dir, removed on success)")
	keep := fs.Bool("keep", false, "keep the store directory even on success")
	// The default kill window is sized so kills sample the whole commit
	// pipeline: long enough to get past process startup and the
	// open-time checkpoint, short enough that most rounds still die.
	maxDelay := fs.Duration("maxdelay", 120*time.Millisecond, "upper bound on the random kill delay")
	record := fs.String("record", "", "write the campaign's schedule trace to this JSONL file")
	replayTrace := fs.String("replaytrace", "", "re-execute a recorded kill trace and diff its schedule")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}

	storeDir := *dir
	if storeDir == "" {
		d, err := os.MkdirTemp("", "nrlchaos-real-")
		if err != nil {
			fmt.Fprintln(errOut, "nrlchaos:", err)
			return exitUsage
		}
		storeDir = d
	}

	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(errOut, "nrlchaos:", err)
		return exitUsage
	}
	worker := func(verify bool) *exec.Cmd {
		wargs := []string{"-realworker",
			"-dir", storeDir,
			"-appends", strconv.Itoa(*appends),
			"-capacity", strconv.Itoa(*capacity),
		}
		if verify {
			wargs = append(wargs, "-verify")
		}
		return exec.Command(exe, wargs...)
	}

	var res *chaos.KillResult
	var div *schedtrace.Divergence
	if *replayTrace != "" {
		// Replay: the recorded header carries the campaign shape; the
		// worker flags (-appends, -capacity, -dir) still shape the
		// incarnations, which must match the recording's to reproduce.
		rec, rerr := schedtrace.ReadFile(*replayTrace)
		if rerr != nil {
			fmt.Fprintln(errOut, "nrlchaos:", rerr)
			return exitUsage
		}
		res, div, err = chaos.ReplayKillTrace(rec, worker)
		if err == nil {
			*rounds = rec.Header.Rounds
		}
	} else {
		res, err = chaos.RunKillCampaign(chaos.KillConfig{
			Rounds:       *rounds,
			Seed:         *seed,
			MaxKillDelay: *maxDelay,
			Worker:       worker,
		})
	}
	if err != nil {
		fmt.Fprintln(errOut, "nrlchaos:", err)
		return exitUsage
	}
	if *record != "" {
		if werr := res.Trace.WriteFile(*record); werr != nil {
			fmt.Fprintln(errOut, "nrlchaos:", werr)
			return exitUsage
		}
		fmt.Fprintf(out, "schedule trace: %s (%d rounds)\n", *record, len(res.Trace.Rounds))
	}

	fmt.Fprintf(out, "real-crash    %d rounds, %d kills, %d clean exits, final log length %d",
		*rounds, res.Kills, res.CleanExits, res.FinalLen)
	if res.TornWrites > 0 {
		fmt.Fprintf(out, ", %d torn pages (%d repaired)", res.TornWrites, res.RepairedWrites)
	}
	fmt.Fprintf(out, ", %d black-box checks", res.BlackBoxChecks)
	if res.BlackBoxTorn > 0 {
		fmt.Fprintf(out, " (%d torn recorder slots)", res.BlackBoxTorn)
	}
	if len(res.Failures) == 0 {
		fmt.Fprintf(out, ": ok\n")
	} else {
		fmt.Fprintf(out, ": VIOLATION\n")
	}
	fmt.Fprintf(out, "kill phase coverage (%d distinct):\n", res.Phases.Distinct())
	printIndented(out, res.Phases.String(), "  ")
	if len(res.Failures) > 0 {
		for _, f := range res.Failures {
			fmt.Fprintf(out, "  %s\n", f)
		}
		for _, tr := range res.Transcripts {
			printIndented(out, tr, "  ")
		}
		fmt.Fprintf(out, "store kept for inspection: %s\n", storeDir)
		return exitViolation
	}
	if div != nil {
		fmt.Fprintf(out, "schedule DIVERGED from %s: %v\n", *replayTrace, div)
		return exitViolation
	}
	if *replayTrace != "" {
		fmt.Fprintf(out, "schedule matched the recording %s\n", *replayTrace)
	}
	if *keep || *dir != "" {
		fmt.Fprintf(out, "store: %s\n", storeDir)
	} else {
		os.RemoveAll(storeDir)
	}
	return exitClean
}

// runRealWorker is the -realworker mode: one incarnation of the
// kill-harness workload, spawned by runReal (or by hand for debugging).
// Its stdout is the worker line protocol; its exit code is one of the
// chaos.KillWorker codes.
func runRealWorker(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("nrlchaos -realworker", flag.ContinueOnError)
	fs.SetOutput(errOut)
	dir := fs.String("dir", "", "persist store directory")
	appends := fs.Int("appends", 40, "log appends to perform")
	capacity := fs.Int("capacity", 1<<16, "log capacity in records")
	verify := fs.Bool("verify", false, "recover and verify only, no appends")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if *dir == "" {
		fmt.Fprintln(errOut, "nrlchaos: -realworker needs -dir")
		return exitUsage
	}
	return chaos.RunKillWorker(chaos.KillWorkerConfig{
		Dir:      *dir,
		Appends:  *appends,
		Capacity: *capacity,
		Verify:   *verify,
	}, out)
}
