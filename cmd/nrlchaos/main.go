// Command nrlchaos runs coverage-guided crash campaigns against the
// harness workloads: N seeded runs per workload, crashes biased toward
// never-crashed coordinates (object, operation, line, depth,
// crashes-so-far), every history NRL-checked, livelocks diagnosed by the
// watchdog as structured stuck reports, and failures shrunk to a minimal
// deterministic reproducer printed as replayable flags.
//
// Usage:
//
//	nrlchaos [-workload NAME|all] [-runs N] [-seed S] [-procs N] [-ops N]
//	         [-rate R] [-boost B] [-maxcrashes N] [-target EXPR]
//	         [-shrink] [-coverage] [-record trace.jsonl]
//	nrlchaos -workload NAME -replay SITES -seed RUNSEED [-procs N] [-ops N]
//	         [-trace out.jsonl]
//	nrlchaos -replaytrace trace.jsonl
//	nrlchaos -real [-rounds N] [-seed S] [-appends N] [-dir DIR] [-keep]
//	         [-maxdelay D] [-record trace.jsonl] [-replaytrace trace.jsonl]
//
// -record writes the campaign's schedule trace — the checksummed JSONL
// of every seeded choice and verdict — and, when shrinking finds a
// violation, the minimized reproducer next to it (.min.jsonl), ready to
// commit under internal/chaos/testdata/regressions. -replaytrace
// re-executes a recorded trace and exits 0 only if the fresh run
// matches the recording round for round; the first divergence is
// printed as a structured round/field/recorded/replay diff.
//
// -real switches from simulated crashes to real ones: worker processes
// (this binary re-executed with -realworker) run a durable counter/log
// workload over the file-backed persist store and are SIGKILLed at
// seeded random points; every restart must recover to an NRL-consistent
// state, and the summary reports which persistence phases the kills
// landed in.
//
// In campaign mode -seed is the master seed (each run derives its own);
// in replay mode -seed is the failing run's seed as printed in the
// reproducer line. -target restricts crashes to a region, e.g.
// "recovery&depth>=2" (during nested recovery), "await" (inside a
// waiting loop), "attempt>=1" (second crash of the same frame).
//
// Exit codes: 0 clean, 1 NRL violation found (or reproduced), 2 stuck
// runs (livelock) without a violation, 3 usage error.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"nrl/internal/chaos"
	schedtrace "nrl/internal/chaos/trace"
	"nrl/internal/harness"
	"nrl/internal/proc"
	"nrl/internal/trace"
)

// Exit codes (shared convention with nrlcheck and nrlsweep).
const (
	exitClean     = 0
	exitViolation = 1
	exitStuck     = 2
	exitUsage     = 3
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	// The real-crash modes have their own flag sets: dispatch before
	// parsing the campaign flags.
	if len(args) > 0 {
		switch args[0] {
		case "-real", "--real":
			return runReal(args[1:], out, errOut)
		case "-realworker", "--realworker":
			return runRealWorker(args[1:], out, errOut)
		}
	}
	fs := flag.NewFlagSet("nrlchaos", flag.ContinueOnError)
	fs.SetOutput(errOut)
	workload := fs.String("workload", "all", "workload: "+harness.WorkloadUsage())
	runs := fs.Int("runs", 50, "seeded runs per workload")
	seed := fs.Int64("seed", 1, "master seed (campaign) or run seed (replay)")
	procs := fs.Int("procs", 2, "number of processes (clamped by the workload)")
	ops := fs.Int("ops", 2, "operations per process per run")
	rate := fs.Float64("rate", chaos.DefaultRate, "base crash probability for covered coordinates")
	boost := fs.Float64("boost", chaos.DefaultBoost, "rate multiplier for never-crashed coordinates")
	maxCrashes := fs.Int("maxcrashes", 0, "crash budget per run (0 = 2*procs+2)")
	target := fs.String("target", "", "restrict crashes to a region (e.g. recovery&depth>=2, await, attempt>=1)")
	shrink := fs.Bool("shrink", true, "shrink failures to a minimal reproducer")
	coverage := fs.Bool("coverage", false, "print the full coverage table per workload")
	replay := fs.String("replay", "", "replay crash sites (p1@12,p2@40) instead of campaigning")
	traceOut := fs.String("trace", "", "replay only: write the run's event stream to this JSONL file")
	record := fs.String("record", "", "write the campaign's schedule trace to this JSONL file (single workload)")
	replayTrace := fs.String("replaytrace", "", "re-execute a recorded schedule trace and diff against it")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if *replayTrace != "" {
		return runReplayTrace(out, errOut, *replayTrace)
	}
	if *replay != "" {
		return runReplay(out, errOut, *workload, *replay, *seed, *procs, *ops, *traceOut)
	}

	var loads []harness.Workload
	if *workload == "all" {
		loads = harness.RealWorkloads()
	} else {
		w, ok := harness.WorkloadByName(*workload)
		if !ok {
			fmt.Fprintf(errOut, "nrlchaos: unknown workload %q (want %s)\n", *workload, harness.WorkloadUsage())
			return exitUsage
		}
		loads = []harness.Workload{w}
	}
	if *record != "" && len(loads) != 1 {
		fmt.Fprintf(errOut, "nrlchaos: -record needs a single -workload (got %d)\n", len(loads))
		return exitUsage
	}

	code := exitClean
	for _, w := range loads {
		res, err := chaos.Run(chaos.Config{
			Workload: w,
			Procs:    *procs, Ops: *ops,
			Runs: *runs, Seed: *seed,
			Rate: *rate, Boost: *boost, MaxCrashes: *maxCrashes,
			Target: *target, Shrink: *shrink,
		})
		if err != nil {
			fmt.Fprintf(errOut, "nrlchaos: %s: %v\n", w.Name, err)
			return exitUsage
		}
		printSummary(out, w, res, *procs, *ops)
		if *coverage {
			printCoverage(out, res.Coverage)
		}
		if *record != "" {
			if err := recordTraces(out, errOut, w, res, *procs, *ops, *record); err != nil {
				return exitUsage
			}
		}
		if res.Failure != nil {
			code = exitViolation
		} else if res.Stuck > 0 && code == exitClean {
			code = exitStuck
		}
	}
	return code
}

// recordTraces writes the campaign schedule trace and, when shrinking
// produced a reproducer, the minimized regression trace next to it.
func recordTraces(out, errOut io.Writer, w harness.Workload, res *chaos.Result, procs, ops int, path string) error {
	if err := res.Trace.WriteFile(path); err != nil {
		fmt.Fprintln(errOut, "nrlchaos:", err)
		return err
	}
	fmt.Fprintf(out, "  schedule trace: %s (%d rounds)\n", path, len(res.Trace.Rounds))
	if res.Failure == nil {
		return nil
	}
	minPath := strings.TrimSuffix(path, ".jsonl") + ".min.jsonl"
	tr := chaos.RegressionTrace(w, procs, ops, res.Failure,
		fmt.Sprintf("minimized from campaign seed %d run %d", res.Trace.Header.Seed, res.Failure.Run))
	if err := tr.WriteFile(minPath); err != nil {
		fmt.Fprintln(errOut, "nrlchaos:", err)
		return err
	}
	fmt.Fprintf(out, "  minimized regression trace: %s\n", minPath)
	return nil
}

// runReplayTrace re-executes a recorded simulated-campaign trace and
// reports the first divergence. Exit codes: 0 the replay matched the
// recording, 1 it diverged (the code's behavior has drifted), 3 the
// trace is unreadable or needs a live harness.
func runReplayTrace(out, errOut io.Writer, path string) int {
	rec, err := schedtrace.ReadFile(path)
	if err != nil {
		fmt.Fprintln(errOut, "nrlchaos:", err)
		return exitUsage
	}
	_, div, err := chaos.ReplayTrace(rec)
	if err != nil {
		fmt.Fprintln(errOut, "nrlchaos:", err)
		return exitUsage
	}
	fmt.Fprintf(out, "replaytrace %s: kind %s, workload %s, seed %d, %d rounds\n",
		path, rec.Header.Kind, rec.Header.Workload, rec.Header.Seed, len(rec.Rounds))
	if div != nil {
		fmt.Fprintf(out, "DIVERGED: %v\n", div)
		return exitViolation
	}
	fmt.Fprintln(out, "replay matched the recording")
	return exitClean
}

func printSummary(out io.Writer, w harness.Workload, res *chaos.Result, procs, ops int) {
	d, c := res.Coverage.Stats()
	fmt.Fprintf(out, "%-12s %d runs, %d crashes, coverage %d/%d coords (%.0f%%)",
		w.Name, res.Runs, res.Crashes, c, d, res.Coverage.Fraction()*100)
	if res.Stuck > 0 {
		fmt.Fprintf(out, ", %d stuck", res.Stuck)
	}
	if res.Partial > 0 {
		fmt.Fprintf(out, ", %d partial verdicts", res.Partial)
	}
	if res.Failure == nil {
		fmt.Fprintf(out, ": ok\n")
	} else {
		fmt.Fprintf(out, ": VIOLATION\n")
	}
	if res.Stuck > 0 && res.FirstStuck != nil {
		fmt.Fprintf(out, "  first stuck run:\n")
		printIndented(out, res.FirstStuck.String(), "    ")
	}
	if f := res.Failure; f != nil {
		fmt.Fprintf(out, "  run %d (seed %d): %v\n", f.Run, f.RunSeed, f.Err)
		fmt.Fprintf(out, "  crash sites: %s", chaos.FormatSites(f.Sites))
		if len(f.Shrunk) < len(f.Sites) {
			fmt.Fprintf(out, " -> shrunk to %s (%d replays)", chaos.FormatSites(f.Shrunk), f.ShrinkRuns)
		}
		fmt.Fprintln(out)
		fmt.Fprintf(out, "  replay: nrlchaos -workload %s -procs %d -ops %d -seed %d -replay %s\n",
			w.Name, procs, ops, f.RunSeed, chaos.FormatSites(f.Shrunk))
	}
}

func printCoverage(out io.Writer, cov *chaos.Coverage) {
	fmt.Fprintf(out, "  %-28s %8s %8s\n", "coordinate", "offered", "crashes")
	for _, row := range cov.Rows() {
		fmt.Fprintf(out, "  %-28s %8d %8d\n", row.Coord, row.Offered, row.Crashes)
	}
}

func printIndented(out io.Writer, s, prefix string) {
	for len(s) > 0 {
		line := s
		if i := indexByte(s, '\n'); i >= 0 {
			line, s = s[:i], s[i+1:]
		} else {
			s = ""
		}
		fmt.Fprintf(out, "%s%s\n", prefix, line)
	}
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

func runReplay(out, errOut io.Writer, workload, sitesFlag string, seed int64, procs, ops int, traceOut string) int {
	w, ok := harness.WorkloadByName(workload)
	if !ok || workload == "all" {
		fmt.Fprintf(errOut, "nrlchaos: -replay needs a single workload (want %s)\n", harness.WorkloadUsage())
		return exitUsage
	}
	sites, err := chaos.ParseSites(sitesFlag)
	if err != nil {
		fmt.Fprintln(errOut, "nrlchaos:", err)
		return exitUsage
	}
	var tr trace.Tracer
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			fmt.Fprintln(errOut, "nrlchaos:", err)
			return exitUsage
		}
		defer f.Close()
		jl := trace.NewJSONL(f)
		defer jl.Flush()
		tr = jl
	}
	h, verdict := chaos.ReplayTraced(w, procs, ops, seed, sites, 0, 0, tr)
	fmt.Fprintf(out, "replay %s seed %d sites %s: %d history steps\n",
		w.Name, seed, chaos.FormatSites(sites), len(h.Steps))
	if verdict == nil {
		fmt.Fprintln(out, "verdict: ok (no NRL violation)")
		return exitClean
	}
	var se *proc.StuckError
	if errors.As(verdict, &se) {
		fmt.Fprintln(out, "verdict: STUCK")
		printIndented(out, se.Report.String(), "  ")
		return exitStuck
	}
	fmt.Fprintf(out, "verdict: VIOLATION: %v\nhistory:\n%s", verdict, h)
	return exitViolation
}
