// Command nrlvet statically enforces the repository's persist-and-
// recovery discipline: the flush/fence ordering of DESIGN.md §5b, the
// purity rules recovery code must obey, the store-ordering lattice
// declared with nrl:persist-before annotations, trace attribution, and
// the budgeted-checker conventions at the CLI boundary.
//
// Usage:
//
//	nrlvet [-json|-sarif] [-a names] [-list] [packages...]
//	nrlvet [-json|-sarif] [-a names] -dir path
//	nrlvet -summary [packages...]
//	nrlvet -ignores [packages...]
//
// Packages are go-list patterns (default "./..."); -dir analyzes a
// single directory as one package, which also reaches testdata trees
// that package patterns cannot name. Findings are suppressed by an
// `//nrl:ignore <reason>` comment on the same line or the line above;
// a reason-less ignore suppresses nothing and is itself a finding.
//
// -sarif emits findings as a SARIF 2.1.0 log for code-scanning upload;
// -summary dumps the interprocedural persist-effect summaries the
// analyzers run on (one line per function with effects); -ignores
// inventories every nrl:ignore suppression in the tree with its reason,
// so the escape hatch stays reviewable.
//
// Exit codes: 0 no findings, 1 findings reported, 3 usage or load error
// (shared convention with nrlcheck and nrlchaos).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"nrl/internal/analysis"
)

const (
	exitClean    = 0
	exitFindings = 1
	exitUsage    = 3
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("nrlvet", flag.ContinueOnError)
	fs.SetOutput(errOut)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array instead of text lines")
	sarifOut := fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log instead of text lines")
	summaryOut := fs.Bool("summary", false, "dump per-function persist-effect summaries and exit")
	ignoresOut := fs.Bool("ignores", false, "inventory every nrl:ignore suppression and exit")
	names := fs.String("a", "", "comma-separated analyzer subset (default: the whole suite)")
	list := fs.Bool("list", false, "list the suite's analyzers and exit")
	dir := fs.String("dir", "", "analyze a single directory as one package (reaches testdata trees)")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(out, "%-14s %s\n", a.Name, a.Doc)
		}
		return exitClean
	}

	analyzers, err := selectAnalyzers(*names)
	if err != nil {
		fmt.Fprintln(errOut, "nrlvet:", err)
		return exitUsage
	}

	var pkgs []*analysis.Package
	if *dir != "" {
		if fs.NArg() > 0 {
			fmt.Fprintln(errOut, "nrlvet: -dir and package patterns are mutually exclusive")
			return exitUsage
		}
		root, err := analysis.ModuleRoot(".")
		if err != nil {
			fmt.Fprintln(errOut, "nrlvet:", err)
			return exitUsage
		}
		pkg, err := analysis.LoadDir(root, *dir)
		if err != nil {
			fmt.Fprintln(errOut, "nrlvet:", err)
			return exitUsage
		}
		pkgs = []*analysis.Package{pkg}
	} else {
		patterns := fs.Args()
		if len(patterns) == 0 {
			patterns = []string{"./..."}
		}
		pkgs, err = analysis.LoadPatterns(".", patterns...)
		if err != nil {
			fmt.Fprintln(errOut, "nrlvet:", err)
			return exitUsage
		}
	}

	if *summaryOut {
		analysis.BuildProgram(pkgs).Dump(out)
		return exitClean
	}
	if *ignoresOut {
		for _, s := range analysis.IgnoreSites(pkgs) {
			reason := s.Reason
			if reason == "" {
				reason = "(no reason)"
			}
			fmt.Fprintf(out, "%s:%d: %s\n", relPath(s.Pos.Filename), s.Pos.Line, reason)
		}
		return exitClean
	}

	diags, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(errOut, "nrlvet:", err)
		return exitUsage
	}

	switch {
	case *jsonOut && *sarifOut:
		fmt.Fprintln(errOut, "nrlvet: -json and -sarif are mutually exclusive")
		return exitUsage
	case *jsonOut:
		if err := writeJSON(out, diags); err != nil {
			fmt.Fprintln(errOut, "nrlvet:", err)
			return exitUsage
		}
	case *sarifOut:
		if err := writeSARIF(out, diags); err != nil {
			fmt.Fprintln(errOut, "nrlvet:", err)
			return exitUsage
		}
	default:
		for _, d := range diags {
			fmt.Fprintf(out, "%s:%d:%d: [%s/%s] %s\n",
				relPath(d.Pos.Filename), d.Pos.Line, d.Pos.Column,
				d.Analyzer, d.Rule, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(errOut, "nrlvet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return exitFindings
	}
	return exitClean
}

// selectAnalyzers resolves the -a subset, defaulting to the full suite.
func selectAnalyzers(names string) ([]*analysis.Analyzer, error) {
	if names == "" {
		return analysis.Analyzers(), nil
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		a := analysis.AnalyzerByName(name)
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q (try -list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// jsonFinding is the stable wire shape of one finding.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Rule     string `json:"rule"`
	Message  string `json:"message"`
}

func writeJSON(out io.Writer, diags []analysis.Diagnostic) error {
	findings := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		findings = append(findings, jsonFinding{
			File:     relPath(d.Pos.Filename),
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Rule:     d.Rule,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(findings)
}

// ---- SARIF 2.1.0 (minimal subset for code-scanning upload) ----

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// writeSARIF emits diags as one SARIF run, rule ids "analyzer/rule",
// deduplicated in first-seen order so the log is stable.
func writeSARIF(out io.Writer, diags []analysis.Diagnostic) error {
	var rules []sarifRule
	seen := map[string]bool{}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		id := d.Analyzer + "/" + d.Rule
		if !seen[id] {
			seen[id] = true
			doc := id
			if a := analysis.AnalyzerByName(d.Analyzer); a != nil {
				doc = a.Doc
			}
			rules = append(rules, sarifRule{ID: id, ShortDescription: sarifMessage{Text: doc}})
		}
		results = append(results, sarifResult{
			RuleID:  id,
			Level:   "warning",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(relPath(d.Pos.Filename))},
				Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
			}}},
		})
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "nrlvet", InformationURI: "https://pkg.go.dev/nrl/cmd/nrlvet", Rules: rules}},
			Results: results,
		}},
	})
}

// relPath renders a position path relative to the working directory so
// output is stable across checkouts (and golden-testable).
func relPath(path string) string {
	wd, err := os.Getwd()
	if err != nil {
		return path
	}
	rel, err := filepath.Rel(wd, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return rel
}
