// Command nrlvet statically enforces the repository's persist-and-
// recovery discipline: the flush/fence ordering of DESIGN.md §5b, the
// purity rules recovery code must obey, the store-ordering lattice
// declared with nrl:persist-before annotations, trace attribution, and
// the budgeted-checker conventions at the CLI boundary.
//
// Usage:
//
//	nrlvet [-json] [-a names] [-list] [packages...]
//	nrlvet [-json] [-a names] -dir path
//
// Packages are go-list patterns (default "./..."); -dir analyzes a
// single directory as one package, which also reaches testdata trees
// that package patterns cannot name. Findings are suppressed by an
// `//nrl:ignore <reason>` comment on the same line or the line above;
// a reason-less ignore suppresses nothing and is itself a finding.
//
// Exit codes: 0 no findings, 1 findings reported, 3 usage or load error
// (shared convention with nrlcheck and nrlchaos).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"nrl/internal/analysis"
)

const (
	exitClean    = 0
	exitFindings = 1
	exitUsage    = 3
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("nrlvet", flag.ContinueOnError)
	fs.SetOutput(errOut)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array instead of text lines")
	names := fs.String("a", "", "comma-separated analyzer subset (default: the whole suite)")
	list := fs.Bool("list", false, "list the suite's analyzers and exit")
	dir := fs.String("dir", "", "analyze a single directory as one package (reaches testdata trees)")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(out, "%-14s %s\n", a.Name, a.Doc)
		}
		return exitClean
	}

	analyzers, err := selectAnalyzers(*names)
	if err != nil {
		fmt.Fprintln(errOut, "nrlvet:", err)
		return exitUsage
	}

	var pkgs []*analysis.Package
	if *dir != "" {
		if fs.NArg() > 0 {
			fmt.Fprintln(errOut, "nrlvet: -dir and package patterns are mutually exclusive")
			return exitUsage
		}
		root, err := analysis.ModuleRoot(".")
		if err != nil {
			fmt.Fprintln(errOut, "nrlvet:", err)
			return exitUsage
		}
		pkg, err := analysis.LoadDir(root, *dir)
		if err != nil {
			fmt.Fprintln(errOut, "nrlvet:", err)
			return exitUsage
		}
		pkgs = []*analysis.Package{pkg}
	} else {
		patterns := fs.Args()
		if len(patterns) == 0 {
			patterns = []string{"./..."}
		}
		pkgs, err = analysis.LoadPatterns(".", patterns...)
		if err != nil {
			fmt.Fprintln(errOut, "nrlvet:", err)
			return exitUsage
		}
	}

	diags, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(errOut, "nrlvet:", err)
		return exitUsage
	}

	if *jsonOut {
		if err := writeJSON(out, diags); err != nil {
			fmt.Fprintln(errOut, "nrlvet:", err)
			return exitUsage
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(out, "%s:%d:%d: [%s/%s] %s\n",
				relPath(d.Pos.Filename), d.Pos.Line, d.Pos.Column,
				d.Analyzer, d.Rule, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(errOut, "nrlvet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return exitFindings
	}
	return exitClean
}

// selectAnalyzers resolves the -a subset, defaulting to the full suite.
func selectAnalyzers(names string) ([]*analysis.Analyzer, error) {
	if names == "" {
		return analysis.Analyzers(), nil
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		a := analysis.AnalyzerByName(name)
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q (try -list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// jsonFinding is the stable wire shape of one finding.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Rule     string `json:"rule"`
	Message  string `json:"message"`
}

func writeJSON(out io.Writer, diags []analysis.Diagnostic) error {
	findings := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		findings = append(findings, jsonFinding{
			File:     relPath(d.Pos.Filename),
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Rule:     d.Rule,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(findings)
}

// relPath renders a position path relative to the working directory so
// output is stable across checkouts (and golden-testable).
func relPath(path string) string {
	wd, err := os.Getwd()
	if err != nil {
		return path
	}
	rel, err := filepath.Rel(wd, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return rel
}
