// Package seeded carries deliberate discipline violations for the
// nrlvet CLI goldens: stable findings from persistorder, witnessorder,
// traceattr, and the ignore engine (recoverypure and checkconv have
// their own golden packages under internal/analysis/testdata).
package seeded

import (
	"nrl/internal/nvm"
	"nrl/internal/trace"
)

func missedFlush(m *nvm.Memory, a nvm.Addr, v uint64, commit bool) {
	m.Write(a, v)
	if commit {
		m.Persist(a)
	}
}

func flushNoFence(m *nvm.Memory, a nvm.Addr, v uint64) {
	m.Write(a, v)
	m.Flush(a)
}

func zeroAttr(m *nvm.Memory, a nvm.Addr, v uint64) {
	m.WriteAt(a, v, trace.Attr{})
}

type cell struct {
	val  nvm.Addr // nrl:persist-before next(write): contents before link
	next nvm.Addr
}

func publish(m *nvm.Memory, c *cell, v uint64) {
	m.Write(c.val, v)
	m.Write(c.next, 1)
}

// A reasoned suppression is honored; this function contributes nothing.
func ignored(m *nvm.Memory, a nvm.Addr, v uint64) {
	m.Write(a, v)
	m.Flush(a) //nrl:ignore golden fixture: exercises the suppression path end to end
}

// A reason-less ignore is itself a finding.
//
//nrl:ignore
var placeholder = 0
