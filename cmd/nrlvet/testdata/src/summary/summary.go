// Fixture for the -summary dump: a helper chain exercising each
// summarized effect — parameter flushes, fences, hidden stores, the
// variadic persist idiom, wall clock, and allocation sites.
package summary

import (
	"time"

	"nrl/internal/nvm"
)

type rec struct{ v uint64 }

// persistOne flushes and fences its address parameter on every path.
func persistOne(m *nvm.Memory, a nvm.Addr) {
	m.Flush(a)
	m.Fence()
}

// syncAll is the variadic flush-all-then-fence idiom.
func syncAll(m *nvm.Memory, addrs ...nvm.Addr) {
	for _, a := range addrs {
		m.Flush(a)
	}
	m.Fence()
}

// stash writes through its address parameter.
func stash(m *nvm.Memory, a nvm.Addr, v uint64) {
	m.Write(a, v)
}

// stamp reaches wall clock.
func stamp() uint64 {
	return uint64(time.Now().UnixNano())
}

// stampTwice reaches it through one more hop.
func stampTwice() uint64 {
	return stamp() + stamp()
}

// build allocates an escaping record.
func build(v uint64) *rec {
	return &rec{v: v}
}

// commit composes the helpers so the dump shows propagated effects.
func commit(m *nvm.Memory, a, b nvm.Addr, v uint64) *rec {
	stash(m, a, v)
	syncAll(m, a, b)
	persistOne(m, a)
	return build(stampTwice())
}
