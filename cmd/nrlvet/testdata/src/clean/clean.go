// Package clean conforms to every nrlvet rule: the empty-output golden.
package clean

import "nrl/internal/nvm"

func persist(m *nvm.Memory, a nvm.Addr, v uint64) {
	m.Write(a, v)
	m.Flush(a)
	m.Fence()
}
