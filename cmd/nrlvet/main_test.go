package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

func golden(t *testing.T, name string, wantCode int, args ...string) string {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	if code != wantCode {
		t.Fatalf("run(%v) = exit %d, want %d\nstdout:\n%s\nstderr:\n%s",
			args, code, wantCode, out.String(), errOut.String())
	}
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, out.Bytes(), want)
	}
	return out.String()
}

// TestSeededGolden: the seeded-violation fixture produces one stable
// finding per represented analyzer and exits 1.
func TestSeededGolden(t *testing.T) {
	o := golden(t, "seeded", exitFindings, "-dir", "testdata/src/seeded")
	for _, rule := range []string{"missed-flush", "flush-no-fence", "zero-attr", "order-violation", "empty-reason"} {
		if !strings.Contains(o, rule) {
			t.Errorf("text output missing rule %q:\n%s", rule, o)
		}
	}
}

// TestSeededJSONGolden: -json emits the same findings as a stable JSON
// array that round-trips.
func TestSeededJSONGolden(t *testing.T) {
	o := golden(t, "seeded_json", exitFindings, "-json", "-dir", "testdata/src/seeded")
	var findings []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Analyzer string `json:"analyzer"`
		Rule     string `json:"rule"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(o), &findings); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, o)
	}
	if len(findings) == 0 {
		t.Fatal("JSON output has no findings")
	}
	for _, f := range findings {
		if f.File == "" || f.Line == 0 || f.Analyzer == "" || f.Rule == "" || f.Message == "" {
			t.Errorf("finding with empty field: %+v", f)
		}
	}
}

// TestCleanGolden: a conforming package produces no output and exits 0.
func TestCleanGolden(t *testing.T) {
	golden(t, "clean", exitClean, "-dir", "testdata/src/clean")
}

// TestListGolden: -list names every analyzer in the suite.
func TestListGolden(t *testing.T) {
	o := golden(t, "list", exitClean, "-list")
	for _, name := range []string{"persistorder", "recoverypure", "witnessorder", "nestsafe", "allocfree", "traceattr", "checkconv", "ignore"} {
		if !strings.Contains(o, name) {
			t.Errorf("-list output missing %q:\n%s", name, o)
		}
	}
}

// TestSARIFGolden: -sarif renders the seeded findings as a SARIF 2.1.0
// log with one rule per analyzer/rule id and one result per finding.
func TestSARIFGolden(t *testing.T) {
	o := golden(t, "sarif", exitFindings, "-sarif", "-dir", "testdata/src/seeded")
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(o), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, o)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("not a single-run SARIF 2.1.0 log: version=%q runs=%d", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "nrlvet" || len(run.Tool.Driver.Rules) == 0 || len(run.Results) == 0 {
		t.Fatalf("driver/rules/results malformed:\n%s", o)
	}
	ruleIDs := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	for _, r := range run.Results {
		if !ruleIDs[r.RuleID] {
			t.Errorf("result rule %q missing from driver rules", r.RuleID)
		}
		if len(r.Locations) != 1 || r.Locations[0].PhysicalLocation.ArtifactLocation.URI == "" {
			t.Errorf("result %q lacks a physical location", r.RuleID)
		}
	}
}

// TestSummaryGolden: -summary dumps the persist-effect summaries of the
// fixture's helper chain — propagated flushes, fences, hidden stores,
// volatile chains, and allocation counts.
func TestSummaryGolden(t *testing.T) {
	o := golden(t, "summary", exitClean, "-summary", "-dir", "testdata/src/summary")
	for _, want := range []string{"flushes", "fences", "writes", "time.Now", "allocs"} {
		if !strings.Contains(o, want) {
			t.Errorf("-summary output missing %q:\n%s", want, o)
		}
	}
}

// TestIgnoresGolden: -ignores inventories every suppression with its
// reason, including the reason-less one the ignore analyzer flags.
func TestIgnoresGolden(t *testing.T) {
	o := golden(t, "ignores", exitClean, "-ignores", "-dir", "testdata/src/seeded")
	if !strings.Contains(o, "(no reason)") {
		t.Errorf("-ignores output missing the reason-less entry:\n%s", o)
	}
}

// TestJSONAndSARIFConflict: asking for both wire formats is a usage
// error.
func TestJSONAndSARIFConflict(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-json", "-sarif", "-dir", "testdata/src/seeded"}, &out, &errOut); code != exitUsage {
		t.Errorf("exit %d, want %d", code, exitUsage)
	}
}

// TestAnalyzerSubset: -a restricts the suite; only persistorder findings
// surface from the seeded fixture.
func TestAnalyzerSubset(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-a", "persistorder", "-dir", "testdata/src/seeded"}, &out, &errOut); code != exitFindings {
		t.Fatalf("exit %d, want %d\n%s", code, exitFindings, errOut.String())
	}
	o := out.String()
	if !strings.Contains(o, "persistorder") {
		t.Errorf("subset output missing persistorder findings:\n%s", o)
	}
	for _, absent := range []string{"traceattr", "witnessorder", "ignore/"} {
		if strings.Contains(o, absent) {
			t.Errorf("subset output leaked %q findings:\n%s", absent, o)
		}
	}
}

// TestUnknownAnalyzer: a bad -a name is a usage error.
func TestUnknownAnalyzer(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-a", "nope"}, &out, &errOut); code != exitUsage {
		t.Errorf("exit %d, want %d", code, exitUsage)
	}
	if !strings.Contains(errOut.String(), "unknown analyzer") {
		t.Errorf("stderr missing explanation:\n%s", errOut.String())
	}
}

// TestDirAndPatternsConflict: -dir with patterns is a usage error.
func TestDirAndPatternsConflict(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-dir", "testdata/src/clean", "./..."}, &out, &errOut); code != exitUsage {
		t.Errorf("exit %d, want %d", code, exitUsage)
	}
}

// TestSelfPatterns: the driver over its own package is clean — the
// repo-wide gate lives in internal/analysis's TestRepositoryClean.
func TestSelfPatterns(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"./..."}, &out, &errOut); code != exitClean {
		t.Errorf("exit %d, want %d\n%s%s", code, exitClean, out.String(), errOut.String())
	}
}
