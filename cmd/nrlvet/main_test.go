package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

func golden(t *testing.T, name string, wantCode int, args ...string) string {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	if code != wantCode {
		t.Fatalf("run(%v) = exit %d, want %d\nstdout:\n%s\nstderr:\n%s",
			args, code, wantCode, out.String(), errOut.String())
	}
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, out.Bytes(), want)
	}
	return out.String()
}

// TestSeededGolden: the seeded-violation fixture produces one stable
// finding per represented analyzer and exits 1.
func TestSeededGolden(t *testing.T) {
	o := golden(t, "seeded", exitFindings, "-dir", "testdata/src/seeded")
	for _, rule := range []string{"missed-flush", "flush-no-fence", "zero-attr", "order-violation", "empty-reason"} {
		if !strings.Contains(o, rule) {
			t.Errorf("text output missing rule %q:\n%s", rule, o)
		}
	}
}

// TestSeededJSONGolden: -json emits the same findings as a stable JSON
// array that round-trips.
func TestSeededJSONGolden(t *testing.T) {
	o := golden(t, "seeded_json", exitFindings, "-json", "-dir", "testdata/src/seeded")
	var findings []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Analyzer string `json:"analyzer"`
		Rule     string `json:"rule"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(o), &findings); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, o)
	}
	if len(findings) == 0 {
		t.Fatal("JSON output has no findings")
	}
	for _, f := range findings {
		if f.File == "" || f.Line == 0 || f.Analyzer == "" || f.Rule == "" || f.Message == "" {
			t.Errorf("finding with empty field: %+v", f)
		}
	}
}

// TestCleanGolden: a conforming package produces no output and exits 0.
func TestCleanGolden(t *testing.T) {
	golden(t, "clean", exitClean, "-dir", "testdata/src/clean")
}

// TestListGolden: -list names every analyzer in the suite.
func TestListGolden(t *testing.T) {
	o := golden(t, "list", exitClean, "-list")
	for _, name := range []string{"persistorder", "recoverypure", "witnessorder", "traceattr", "checkconv", "ignore"} {
		if !strings.Contains(o, name) {
			t.Errorf("-list output missing %q:\n%s", name, o)
		}
	}
}

// TestAnalyzerSubset: -a restricts the suite; only persistorder findings
// surface from the seeded fixture.
func TestAnalyzerSubset(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-a", "persistorder", "-dir", "testdata/src/seeded"}, &out, &errOut); code != exitFindings {
		t.Fatalf("exit %d, want %d\n%s", code, exitFindings, errOut.String())
	}
	o := out.String()
	if !strings.Contains(o, "persistorder") {
		t.Errorf("subset output missing persistorder findings:\n%s", o)
	}
	for _, absent := range []string{"traceattr", "witnessorder", "ignore/"} {
		if strings.Contains(o, absent) {
			t.Errorf("subset output leaked %q findings:\n%s", absent, o)
		}
	}
}

// TestUnknownAnalyzer: a bad -a name is a usage error.
func TestUnknownAnalyzer(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-a", "nope"}, &out, &errOut); code != exitUsage {
		t.Errorf("exit %d, want %d", code, exitUsage)
	}
	if !strings.Contains(errOut.String(), "unknown analyzer") {
		t.Errorf("stderr missing explanation:\n%s", errOut.String())
	}
}

// TestDirAndPatternsConflict: -dir with patterns is a usage error.
func TestDirAndPatternsConflict(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-dir", "testdata/src/clean", "./..."}, &out, &errOut); code != exitUsage {
		t.Errorf("exit %d, want %d", code, exitUsage)
	}
}

// TestSelfPatterns: the driver over its own package is clean — the
// repo-wide gate lives in internal/analysis's TestRepositoryClean.
func TestSelfPatterns(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"./..."}, &out, &errOut); code != exitClean {
		t.Errorf("exit %d, want %d\n%s%s", code, exitClean, out.String(), errOut.String())
	}
}
