package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

func golden(t *testing.T, name string, wantCode int, args ...string) string {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	if code != wantCode {
		t.Fatalf("run(%v) = exit %d, want %d\nstdout:\n%s\nstderr:\n%s",
			args, code, wantCode, out.String(), errOut.String())
	}
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, out.Bytes(), want)
	}
	return out.String()
}

// TestCounterGolden locks down the deep-recovery sweep summary for the
// counter: point and recovery-site counts are deterministic under the
// seeded controlled scheduler.
func TestCounterGolden(t *testing.T) {
	golden(t, "counter", exitClean, "-obj", "counter", "-ops", "2", "-deep")
}

// TestStuckGolden: a placement that livelocks recovery exits 2 with the
// watchdog's structured report, never a raw panic.
func TestStuckGolden(t *testing.T) {
	o := golden(t, "stuck", exitStuck, "-obj", "stuck", "-ops", "1", "-awaitbudget", "500")
	for _, want := range []string{"STUCK", "stuck report", "verdict:"} {
		if !strings.Contains(o, want) {
			t.Errorf("stuck output missing %q:\n%s", want, o)
		}
	}
}

func TestRunAllSmall(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-ops", "1", "-double=false"}, &out, &errOut); code != exitClean {
		t.Errorf("run = exit %d\n%s%s", code, out.String(), errOut.String())
	}
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{{"-obj", "nope"}, {"-bogus"}} {
		var out, errOut bytes.Buffer
		if code := run(args, &out, &errOut); code != exitUsage {
			t.Errorf("run(%v) = exit %d, want %d", args, code, exitUsage)
		}
	}
}
