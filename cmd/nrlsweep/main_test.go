package main

import "testing"

func TestRunCounterSweep(t *testing.T) {
	if err := run([]string{"-obj", "counter", "-ops", "2"}); err != nil {
		t.Errorf("run = %v", err)
	}
}

func TestRunAllSmall(t *testing.T) {
	if err := run([]string{"-ops", "1", "-double=false"}); err != nil {
		t.Errorf("run = %v", err)
	}
}

func TestRunUnknownWorkload(t *testing.T) {
	if err := run([]string{"-obj", "nope"}); err == nil {
		t.Error("run accepted an unknown workload")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("run accepted a bad flag")
	}
}
