// Command nrlsweep runs the crash-point sweeper: it discovers every
// (process, object, operation, line) crash site a workload visits, then
// re-runs the workload with a single crash at each site (and optionally a
// second crash at the first recovery step), checking every history for
// nesting-safe recoverable linearizability.
//
// Usage:
//
//	nrlsweep [-obj counter|cas|tas|stack|queue|lock|all] [-procs N]
//	         [-ops N] [-double] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"nrl"
	"nrl/internal/proc"
	"nrl/internal/sweep"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "nrlsweep:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("nrlsweep", flag.ContinueOnError)
	obj := fs.String("obj", "all", "workload: counter, cas, tas, stack, queue, lock or all")
	procs := fs.Int("procs", 2, "number of processes")
	ops := fs.Int("ops", 3, "operations per process")
	double := fs.Bool("double", true, "also inject a second crash at the first recovery step")
	seed := fs.Int64("seed", 1, "controlled-scheduler seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	names := []string{"counter", "cas", "tas", "stack", "queue", "lock"}
	if *obj != "all" {
		names = []string{*obj}
	}
	for _, name := range names {
		build, ok := builders[name]
		if !ok {
			return fmt.Errorf("unknown workload %q", name)
		}
		stats, err := sweep.Run(sweep.Config{
			Procs:       *procs,
			Build:       build(*procs, *ops),
			Models:      models(),
			Seed:        *seed,
			DoubleCrash: *double,
		})
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("%-8s ok: %d crash points, %d runs, %d crashes injected, all NRL\n",
			name, stats.Points, stats.Runs, stats.Crashes)
	}
	return nil
}

func models() nrl.ModelFor {
	return nrl.Models(map[string]nrl.Model{
		"ctr":  nrl.CounterModel{},
		"cas":  nrl.CASModel{},
		"t":    nrl.TASModel{},
		"stk":  nrl.StackModel{},
		"q":    nrl.QueueModel{},
		"lock": nrl.MutexModel{},
	})
}

// builders construct per-workload Build functions.
var builders = map[string]func(procs, ops int) func(sys *nrl.System) map[int]func(*nrl.Ctx){
	"counter": func(procs, ops int) func(sys *nrl.System) map[int]func(*nrl.Ctx) {
		return func(sys *nrl.System) map[int]func(*nrl.Ctx) {
			ctr := nrl.NewCounter(sys, "ctr")
			return bodies(procs, func(c *nrl.Ctx) {
				for i := 0; i < ops; i++ {
					ctr.Inc(c)
				}
			})
		}
	},
	"cas": func(procs, ops int) func(sys *nrl.System) map[int]func(*nrl.Ctx) {
		return func(sys *nrl.System) map[int]func(*nrl.Ctx) {
			o := nrl.NewCASObject(sys, "cas")
			return bodies(procs, func(c *nrl.Ctx) {
				for i := 0; i < ops; i++ {
					cur := o.Read(c)
					o.CAS(c, cur, nrl.DistinctCAS(c.P(), uint32(i+1), uint32(i)))
				}
			})
		}
	},
	"tas": func(procs, ops int) func(sys *nrl.System) map[int]func(*nrl.Ctx) {
		return func(sys *nrl.System) map[int]func(*nrl.Ctx) {
			o := nrl.NewTAS(sys, "t")
			return bodies(procs, func(c *nrl.Ctx) { o.TestAndSet(c) })
		}
	},
	"stack": func(procs, ops int) func(sys *nrl.System) map[int]func(*nrl.Ctx) {
		return func(sys *nrl.System) map[int]func(*nrl.Ctx) {
			s := nrl.NewStack(sys, "stk", 1024)
			return bodies(procs, func(c *nrl.Ctx) {
				for i := 0; i < ops; i++ {
					s.Push(c, uint64(c.P()*100+i))
					if i%2 == 1 {
						s.Pop(c)
					}
				}
			})
		}
	},
	"queue": func(procs, ops int) func(sys *nrl.System) map[int]func(*nrl.Ctx) {
		return func(sys *nrl.System) map[int]func(*nrl.Ctx) {
			q := nrl.NewQueue(sys, "q", 1024)
			return bodies(procs, func(c *nrl.Ctx) {
				for i := 0; i < ops; i++ {
					q.Enqueue(c, uint64(c.P()*100+i))
					if i%2 == 1 {
						q.Dequeue(c)
					}
				}
			})
		}
	},
	"lock": func(procs, ops int) func(sys *nrl.System) map[int]func(*nrl.Ctx) {
		return func(sys *nrl.System) map[int]func(*nrl.Ctx) {
			l := nrl.NewLock(sys, "lock")
			return bodies(procs, func(c *nrl.Ctx) {
				for i := 0; i < ops; i++ {
					l.Acquire(c)
					l.Release(c)
				}
			})
		}
	},
}

func bodies(procs int, body func(*nrl.Ctx)) map[int]func(*nrl.Ctx) {
	m := make(map[int]func(*proc.Ctx), procs)
	for p := 1; p <= procs; p++ {
		m[p] = body
	}
	return m
}
