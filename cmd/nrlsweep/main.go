// Command nrlsweep runs the crash-point sweeper: it discovers every
// (process, object, operation, line) crash site a workload visits, then
// re-runs the workload with a single crash at each site — and optionally
// a second crash at the first recovery step (-double) or at every line of
// the recovery path (-deep) — checking every history for nesting-safe
// recoverable linearizability.
//
// Usage:
//
//	nrlsweep [-obj NAME|all] [-procs N] [-ops N] [-double] [-deep] [-seed N]
//
// Exit codes: 0 all placements NRL, 1 a placement violated NRL (its
// history is printed), 2 a placement livelocked recovery (the watchdog's
// stuck report is printed), 3 usage error.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"nrl/internal/harness"
	"nrl/internal/proc"
	"nrl/internal/sweep"
)

// Exit codes (shared convention with nrlcheck and nrlchaos).
const (
	exitClean     = 0
	exitViolation = 1
	exitStuck     = 2
	exitUsage     = 3
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("nrlsweep", flag.ContinueOnError)
	fs.SetOutput(errOut)
	obj := fs.String("obj", "all", "workload: "+harness.WorkloadUsage())
	procs := fs.Int("procs", 2, "number of processes (clamped by the workload)")
	ops := fs.Int("ops", 3, "operations per process")
	double := fs.Bool("double", true, "also inject a second crash at the first recovery step")
	deep := fs.Bool("deep", false, "inject the second crash at every line of the recovery path")
	seed := fs.Int64("seed", 1, "controlled-scheduler seed")
	awaitBudget := fs.Int("awaitbudget", 100_000, "await iterations before the watchdog declares a livelock")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}

	var loads []harness.Workload
	if *obj == "all" {
		loads = harness.RealWorkloads()
	} else {
		w, ok := harness.WorkloadByName(*obj)
		if !ok {
			fmt.Fprintf(errOut, "nrlsweep: unknown workload %q (want %s)\n", *obj, harness.WorkloadUsage())
			return exitUsage
		}
		loads = []harness.Workload{w}
	}
	for _, w := range loads {
		w := w
		np := w.Procs(*procs)
		stats, err := sweep.Run(sweep.Config{
			Procs: np,
			Build: func(sys *proc.System) map[int]func(*proc.Ctx) {
				return w.Build(sys, np, *ops)
			},
			Models:        w.Models,
			Seed:          *seed,
			DoubleCrash:   *double && !*deep,
			DeepRecovery:  *deep,
			AwaitBudget:   *awaitBudget,
			RecoverPanics: true,
		})
		var se *proc.StuckError
		if errors.As(err, &se) {
			fmt.Fprintf(out, "%s: STUCK\n%s\n", w.Name, se.Report.String())
			return exitStuck
		}
		if err != nil {
			fmt.Fprintf(out, "%s: VIOLATION\n%v\n", w.Name, err)
			fmt.Fprintln(errOut, "nrlsweep:", w.Name, "failed")
			return exitViolation
		}
		fmt.Fprintf(out, "%-12s ok: %d crash points, %d runs, %d crashes injected", w.Name, stats.Points, stats.Runs, stats.Crashes)
		if *deep {
			fmt.Fprintf(out, ", %d recovery sites", stats.RecoverySites)
		}
		fmt.Fprintln(out, ", all NRL")
	}
	return exitClean
}
