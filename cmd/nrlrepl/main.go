// Command nrlrepl manages and interrogates replicated durable stores: a
// replica.Set root holding member directories r0..r{n-1}, each a full
// persist store, kept in sync by leader-side WAL shipping and fenced by
// epochs.
//
// Usage:
//
//	nrlrepl init    -root DIR [-replicas N]
//	nrlrepl status  -root DIR [-replicas N]
//	nrlrepl verify  -root DIR [-replicas N]
//	nrlrepl chaos   -root DIR [-replicas N] [-rounds N] [-seed S]
//	                [-appends N] [-maxdelay D] [-keep]
//
// init creates the member directories and performs a first election so
// every member holds a durable genesis store. status scans the members
// read-only — no election, no healing — and reports each directory's
// durable credentials plus the leader the next open would elect. verify
// actually opens the set, letting recovery and catch-up run, and
// reports whether it came up serving. chaos runs the replica-fault
// SIGKILL campaign against the root (workers are this binary re-run in
// a hidden worker mode).
//
// Every subcommand prints a single JSON document on stdout.
//
// Exit codes: 0 clean, 1 violation (chaos) or degraded set (verify),
// 3 usage or I/O error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"nrl/internal/persist"
	"nrl/internal/replica"
)

const (
	exitClean     = 0
	exitViolation = 1
	exitUsage     = 3
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	if len(args) == 0 {
		usage(errOut)
		return exitUsage
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "init":
		return runInit(rest, out, errOut)
	case "status":
		return runStatus(rest, out, errOut)
	case "verify":
		return runVerify(rest, out, errOut)
	case "chaos":
		return runChaos(rest, out, errOut)
	case "chaosworker":
		// Hidden: one campaign worker incarnation, spawned by chaos.
		return runChaosWorker(rest, out, errOut)
	default:
		fmt.Fprintf(errOut, "nrlrepl: unknown command %q\n", cmd)
		usage(errOut)
		return exitUsage
	}
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: nrlrepl {init|status|verify|chaos} -root DIR [flags]")
}

// setFlags declares the flags every subcommand shares.
func setFlags(fs *flag.FlagSet) (root *string, replicas *int) {
	root = fs.String("root", "", "replica-set root directory (members are ROOT/r0..)")
	replicas = fs.Int("replicas", 3, "replica-set size")
	return
}

func checkSetFlags(fs *flag.FlagSet, errOut io.Writer, root string, replicas int) bool {
	if root == "" {
		fmt.Fprintf(errOut, "nrlrepl %s: -root is required\n", fs.Name())
		return false
	}
	if replicas < 1 {
		fmt.Fprintf(errOut, "nrlrepl %s: -replicas must be >= 1\n", fs.Name())
		return false
	}
	return true
}

func emit(out io.Writer, v any) {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// memberScan is one member directory's read-only credentials.
type memberScan struct {
	Dir        string `json:"dir"`
	Epoch      uint64 `json:"epoch"`
	Prefix     uint64 `json:"prefix"`
	ManifestOK bool   `json:"manifest_ok"`
	Segments   int    `json:"segments"`
	Records    int    `json:"records"`
	PagesTorn  int    `json:"pages_torn"`
	Elect      bool   `json:"elect"`
	Err        string `json:"error,omitempty"`
}

// scanSet scans every member read-only and marks the directory the next
// election would pick: highest (epoch, prefix), lowest index breaking
// ties — the same ranking replica.Open uses.
func scanSet(root string, replicas int) []memberScan {
	scanOne := func(dir string) memberScan {
		m := memberScan{Dir: dir}
		rep, err := persist.ScanDir(dir)
		if err != nil {
			m.Err = err.Error()
			return m
		}
		m.Epoch = rep.Epoch
		m.Prefix = rep.Prefix
		m.ManifestOK = rep.ManifestOK
		m.Segments = rep.Segments
		m.Records = rep.Records
		m.PagesTorn = rep.PagesTorn
		return m
	}
	dirs := replicaDirs(root, replicas)
	ms := make([]memberScan, len(dirs))
	best := -1
	for i, d := range dirs {
		ms[i] = scanOne(d)
		if ms[i].Err != "" {
			continue
		}
		if best < 0 || ms[i].Epoch > ms[best].Epoch ||
			(ms[i].Epoch == ms[best].Epoch && ms[i].Prefix > ms[best].Prefix) {
			best = i
		}
	}
	if best >= 0 {
		ms[best].Elect = true
	}
	return ms
}

func replicaDirs(root string, n int) []string {
	ds := make([]string, n)
	for i := range ds {
		ds[i] = fmt.Sprintf("%s/r%d", root, i)
	}
	return ds
}

// statusDoc is the JSON document of init and status.
type statusDoc struct {
	Root     string       `json:"root"`
	Replicas int          `json:"replicas"`
	Quorum   int          `json:"quorum"`
	Epoch    uint64       `json:"epoch"`
	Members  []memberScan `json:"members"`
}

func statusFromScan(root string, replicas int) statusDoc {
	doc := statusDoc{
		Root:     root,
		Replicas: replicas,
		Quorum:   replicas/2 + 1,
		Members:  scanSet(root, replicas),
	}
	for _, m := range doc.Members {
		if m.Elect {
			doc.Epoch = m.Epoch
		}
	}
	return doc
}

func runInit(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("init", flag.ContinueOnError)
	fs.SetOutput(errOut)
	root, replicas := setFlags(fs)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if !checkSetFlags(fs, errOut, *root, *replicas) {
		return exitUsage
	}
	// Opening the set creates every member directory, elects a leader,
	// and attaches the followers; closing leaves a durable genesis store
	// in each.
	s, err := replica.Open(replica.Options{Dirs: replicaDirs(*root, *replicas)})
	if err != nil {
		fmt.Fprintln(errOut, "nrlrepl init:", err)
		return exitUsage
	}
	if err := s.Close(); err != nil {
		fmt.Fprintln(errOut, "nrlrepl init:", err)
		return exitUsage
	}
	emit(out, statusFromScan(*root, *replicas))
	return exitClean
}

func runStatus(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("status", flag.ContinueOnError)
	fs.SetOutput(errOut)
	root, replicas := setFlags(fs)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if !checkSetFlags(fs, errOut, *root, *replicas) {
		return exitUsage
	}
	emit(out, statusFromScan(*root, *replicas))
	return exitClean
}

// verifyDoc is the JSON document of verify: the live set status after a
// real open, plus the verdict.
type verifyDoc struct {
	OK     bool           `json:"ok"`
	Reason string         `json:"reason,omitempty"`
	Status replica.Status `json:"status"`
}

func runVerify(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	fs.SetOutput(errOut)
	root, replicas := setFlags(fs)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if !checkSetFlags(fs, errOut, *root, *replicas) {
		return exitUsage
	}
	s, err := replica.Open(replica.Options{Dirs: replicaDirs(*root, *replicas)})
	if err != nil {
		emit(out, verifyDoc{OK: false, Reason: err.Error()})
		return exitViolation
	}
	st := s.Status()
	doc := verifyDoc{OK: true, Status: st}
	healthy := 0
	for _, m := range st.Members {
		if m.Healthy {
			healthy++
		}
	}
	switch {
	case st.Degraded != "":
		doc.OK = false
		doc.Reason = "set is degraded: " + st.Degraded
	case healthy < st.Quorum:
		doc.OK = false
		doc.Reason = fmt.Sprintf("only %d of %d members healthy (quorum %d)",
			healthy, len(st.Members), st.Quorum)
	}
	if err := s.Close(); err != nil && doc.OK {
		doc.OK = false
		doc.Reason = "close: " + err.Error()
	}
	emit(out, doc)
	if !doc.OK {
		return exitViolation
	}
	return exitClean
}
