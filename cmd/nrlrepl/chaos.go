package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"time"

	"nrl/internal/chaos"
	schedtrace "nrl/internal/chaos/trace"
)

// chaosDoc is the JSON document of the chaos subcommand.
type chaosDoc struct {
	Rounds     int            `json:"rounds"`
	Kills      int            `json:"kills"`
	CleanExits int            `json:"clean_exits"`
	Promotions uint64         `json:"promotions"`
	Heals      uint64         `json:"heals"`
	Faults     map[string]int `json:"faults"`
	// LeaderFaults counts the rounds whose injury targeted the serving
	// leader's directory.
	LeaderFaults int `json:"leader_faults"`
	// Phases maps each persistence phase to how many kills landed in it.
	Phases     map[string]int `json:"phases"`
	FinalLen   uint64         `json:"final_len"`
	FinalEpoch uint64         `json:"final_epoch"`
	OK         bool           `json:"ok"`
	Failures   []string       `json:"failures,omitempty"`
}

// runChaos runs the replica-fault SIGKILL campaign against -root:
// workers are this binary re-executed as "nrlrepl chaosworker", each
// incarnation killed at a seeded random point with one replica
// directory wiped, corrupted, or disk-faulted.
func runChaos(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("chaos", flag.ContinueOnError)
	fs.SetOutput(errOut)
	root, replicas := setFlags(fs)
	rounds := fs.Int("rounds", 25, "worker incarnations to run (kills included)")
	seed := fs.Int64("seed", 1, "fault and kill-delay schedule seed")
	appends := fs.Int("appends", 20, "log appends per incarnation")
	capacity := fs.Int("capacity", 1<<14, "log capacity in records")
	maxDelay := fs.Duration("maxdelay", 60*time.Millisecond, "upper bound on the random kill delay")
	keep := fs.Bool("keep", false, "keep the root directory even on success")
	record := fs.String("record", "", "write the campaign's schedule trace to this JSONL file")
	replay := fs.String("replay", "", "re-execute a recorded replica-fault trace and diff its schedule")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	madeTemp := false
	if *root == "" {
		d, err := os.MkdirTemp("", "nrlrepl-chaos-")
		if err != nil {
			fmt.Fprintln(errOut, "nrlrepl chaos:", err)
			return exitUsage
		}
		*root = d
		madeTemp = true
	}
	if !checkSetFlags(fs, errOut, *root, *replicas) {
		return exitUsage
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(errOut, "nrlrepl chaos:", err)
		return exitUsage
	}
	worker := func(verify bool, faultDir, faultAfter, faultFor int, wseed int64) *exec.Cmd {
		wargs := []string{"chaosworker",
			"-root", *root,
			"-replicas", strconv.Itoa(*replicas),
			"-appends", strconv.Itoa(*appends),
			"-capacity", strconv.Itoa(*capacity),
			"-faultdir", strconv.Itoa(faultDir),
			"-faultafter", strconv.Itoa(faultAfter),
			"-faultfor", strconv.Itoa(faultFor),
			"-seed", strconv.FormatInt(wseed, 10),
		}
		if verify {
			wargs = append(wargs, "-verify")
		}
		return exec.Command(exe, wargs...)
	}

	var res *chaos.ReplKillResult
	var div *schedtrace.Divergence
	if *replay != "" {
		// Replay: the recorded header fixes rounds, seed, replicas,
		// appends and the kill window; the root is fresh.
		rec, rerr := schedtrace.ReadFile(*replay)
		if rerr != nil {
			fmt.Fprintln(errOut, "nrlrepl chaos:", rerr)
			return exitUsage
		}
		// The worker closure reads these through the flag pointers, so
		// the incarnations are shaped by the recording, not the flags.
		*rounds = rec.Header.Rounds
		*replicas = rec.Header.Replicas
		*appends = rec.Header.Appends
		res, div, err = chaos.ReplayReplKillTrace(rec, *root, worker)
	} else {
		res, err = chaos.RunReplKillCampaign(chaos.ReplKillConfig{
			Rounds:       *rounds,
			Seed:         *seed,
			MaxKillDelay: *maxDelay,
			Root:         *root,
			Replicas:     *replicas,
			Appends:      *appends,
			Worker:       worker,
		})
	}
	if err != nil {
		fmt.Fprintln(errOut, "nrlrepl chaos:", err)
		return exitUsage
	}
	if *record != "" {
		if werr := res.Trace.WriteFile(*record); werr != nil {
			fmt.Fprintln(errOut, "nrlrepl chaos:", werr)
			return exitUsage
		}
		fmt.Fprintf(errOut, "schedule trace: %s (%d rounds)\n", *record, len(res.Trace.Rounds))
	}
	if div != nil {
		res.Failures = append(res.Failures, "schedule divergence: "+div.Error())
	} else if *replay != "" {
		fmt.Fprintf(errOut, "schedule matched the recording %s\n", *replay)
	}

	doc := chaosDoc{
		Rounds:     *rounds,
		Kills:      res.Kills,
		CleanExits: res.CleanExits,
		Promotions: res.Promotions,
		Heals:      res.Heals,
		Faults:     res.Faults,

		LeaderFaults: res.LeaderFaults,
		Phases:       map[string]int{},
		FinalLen:     res.FinalLen,
		FinalEpoch:   res.FinalEpoch,
		OK:           len(res.Failures) == 0,
		Failures:     res.Failures,
	}
	for _, row := range res.Phases.Rows() {
		doc.Phases[row.Phase] = int(row.Kills)
	}
	emit(out, doc)
	if !doc.OK {
		for _, tr := range res.Transcripts {
			fmt.Fprintln(errOut, tr)
		}
		fmt.Fprintf(errOut, "root kept for inspection: %s\n", *root)
		return exitViolation
	}
	if madeTemp && !*keep {
		os.RemoveAll(*root)
	} else {
		fmt.Fprintf(errOut, "root: %s\n", *root)
	}
	return exitClean
}

// runChaosWorker is the hidden worker mode: one incarnation of the
// replica kill-harness workload. Its stdout is the worker line
// protocol; its exit code one of the chaos.KillWorker codes.
func runChaosWorker(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("chaosworker", flag.ContinueOnError)
	fs.SetOutput(errOut)
	root, replicas := setFlags(fs)
	appends := fs.Int("appends", 20, "log appends to perform")
	capacity := fs.Int("capacity", 1<<14, "log capacity in records")
	faultDir := fs.Int("faultdir", -1, "replica index whose I/O is dead (-1 none)")
	faultAfter := fs.Int("faultafter", 0, "append count after which the fault arms")
	faultFor := fs.Int("faultfor", 0, "appends the fault stays armed (0 = forever)")
	seed := fs.Int64("seed", 0, "replica-set jitter seed for this incarnation")
	verify := fs.Bool("verify", false, "recover and verify only, no appends")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if !checkSetFlags(fs, errOut, *root, *replicas) {
		return exitUsage
	}
	return chaos.RunReplKillWorker(chaos.ReplKillWorkerConfig{
		Root:       *root,
		Replicas:   *replicas,
		Appends:    *appends,
		Capacity:   *capacity,
		FaultDir:   *faultDir,
		FaultAfter: *faultAfter,
		FaultFor:   *faultFor,
		Seed:       *seed,
		Verify:     *verify,
	}, out)
}
