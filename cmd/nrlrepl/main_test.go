package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestMain doubles as the worker re-exec shim: the chaos subcommand
// re-runs os.Executable() — in tests, this binary — so with the guard
// set the test binary behaves exactly like nrlrepl.
func TestMain(m *testing.M) {
	if os.Getenv("NRLREPL_RUN_MAIN") != "" && len(os.Args) > 1 && os.Args[1] == "chaosworker" {
		os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

func mustJSON(t *testing.T, b []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(b, v); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, b)
	}
}

func TestInitStatusVerify(t *testing.T) {
	root := filepath.Join(t.TempDir(), "set")
	var out, errOut bytes.Buffer

	if code := run([]string{"init", "-root", root}, &out, &errOut); code != exitClean {
		t.Fatalf("init exit %d: %s", code, errOut.String())
	}
	var st statusDoc
	mustJSON(t, out.Bytes(), &st)
	if st.Replicas != 3 || st.Quorum != 2 || len(st.Members) != 3 {
		t.Fatalf("init doc = %+v", st)
	}
	elected := 0
	for _, m := range st.Members {
		if !m.ManifestOK || m.Err != "" {
			t.Errorf("member %s not initialised: %+v", m.Dir, m)
		}
		if m.Elect {
			elected++
		}
	}
	if elected != 1 {
		t.Errorf("%d members marked elect, want 1", elected)
	}

	out.Reset()
	if code := run([]string{"status", "-root", root}, &out, &errOut); code != exitClean {
		t.Fatalf("status exit %d: %s", code, errOut.String())
	}
	mustJSON(t, out.Bytes(), &st)
	if len(st.Members) != 3 {
		t.Fatalf("status members = %d, want 3", len(st.Members))
	}

	out.Reset()
	if code := run([]string{"verify", "-root", root}, &out, &errOut); code != exitClean {
		t.Fatalf("verify exit %d: %s", code, errOut.String())
	}
	var vd verifyDoc
	mustJSON(t, out.Bytes(), &vd)
	if !vd.OK || vd.Status.Quorum != 2 || len(vd.Status.Members) != 3 {
		t.Fatalf("verify doc = %+v", vd)
	}
	if vd.Status.Members[0].Role != "leader" {
		t.Errorf("first member role = %q, want leader", vd.Status.Members[0].Role)
	}
}

// TestStatusSurvivesLostMember: status is read-only and must report a
// wiped member rather than fail or repair it.
func TestStatusSurvivesLostMember(t *testing.T) {
	root := filepath.Join(t.TempDir(), "set")
	var out, errOut bytes.Buffer
	if code := run([]string{"init", "-root", root}, &out, &errOut); code != exitClean {
		t.Fatalf("init exit %d: %s", code, errOut.String())
	}
	if err := os.RemoveAll(filepath.Join(root, "r2")); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if code := run([]string{"status", "-root", root}, &out, &errOut); code != exitClean {
		t.Fatalf("status exit %d: %s", code, errOut.String())
	}
	var st statusDoc
	mustJSON(t, out.Bytes(), &st)
	if st.Members[2].ManifestOK {
		t.Errorf("wiped member reported a manifest: %+v", st.Members[2])
	}
	if _, err := os.Stat(filepath.Join(root, "r2")); !os.IsNotExist(err) {
		t.Error("status recreated the wiped member directory")
	}
	// Verify, by contrast, opens the set and heals the member back in.
	out.Reset()
	if code := run([]string{"verify", "-root", root}, &out, &errOut); code != exitClean {
		t.Fatalf("verify exit %d: %s", code, errOut.String())
	}
	var vd verifyDoc
	mustJSON(t, out.Bytes(), &vd)
	if !vd.OK {
		t.Fatalf("verify after wipe not ok: %+v", vd)
	}
}

func TestChaosCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess campaign skipped in -short mode")
	}
	t.Setenv("NRLREPL_RUN_MAIN", "1")
	root := filepath.Join(t.TempDir(), "set")
	var out, errOut bytes.Buffer
	code := run([]string{"chaos", "-root", root, "-rounds", "6", "-seed", "3"}, &out, &errOut)
	if code != exitClean {
		t.Fatalf("chaos exit %d:\n%s\n%s", code, out.String(), errOut.String())
	}
	var doc chaosDoc
	mustJSON(t, out.Bytes(), &doc)
	if !doc.OK {
		t.Fatalf("chaos reported failures: %+v", doc.Failures)
	}
	if doc.Kills+doc.CleanExits != 6 {
		t.Errorf("rounds accounted = %d+%d, want 6", doc.Kills, doc.CleanExits)
	}
	if len(doc.Faults) == 0 {
		t.Error("no faults recorded")
	}
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		nil,
		{"bogus"},
		{"status"},
		{"init", "-root", ""},
		{"verify", "-root", "x", "-replicas", "0"},
	} {
		var out, errOut bytes.Buffer
		if code := run(args, &out, &errOut); code != exitUsage {
			t.Errorf("run(%v) exit %d, want %d", args, code, exitUsage)
		}
	}
}
