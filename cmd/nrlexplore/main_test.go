package main

import "testing"

func TestRunRegisterBounded(t *testing.T) {
	if err := run([]string{"-obj", "register", "-crashes", "0"}); err != nil {
		t.Errorf("run = %v", err)
	}
}

func TestRunStrawmanFindsViolation(t *testing.T) {
	if err := run([]string{"-obj", "strawman"}); err != nil {
		t.Errorf("run = %v", err)
	}
}

func TestRunCounterBounded(t *testing.T) {
	if err := run([]string{"-obj", "counter", "-maxruns", "2000"}); err != nil {
		t.Errorf("run = %v", err)
	}
}

func TestRunUnknownObject(t *testing.T) {
	if err := run([]string{"-obj", "nope"}); err == nil {
		t.Error("run accepted an unknown configuration")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("run accepted a bad flag")
	}
}
