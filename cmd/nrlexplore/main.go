// Command nrlexplore runs the bounded exhaustive model checker: for a
// small configuration of a chosen object it enumerates EVERY controlled
// schedule interleaved with EVERY crash placement (up to a crash budget)
// and checks each execution for nesting-safe recoverable linearizability.
//
// Usage:
//
//	nrlexplore [-obj register|cas|counter|strawman] [-crashes N] [-maxruns N]
package main

import (
	"flag"
	"fmt"
	"os"

	"nrl/internal/core"
	"nrl/internal/explore"
	"nrl/internal/objects"
	"nrl/internal/proc"
	"nrl/internal/spec"
	"nrl/internal/valency"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "nrlexplore:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("nrlexplore", flag.ContinueOnError)
	obj := fs.String("obj", "register", "configuration: register, cas, counter or strawman")
	crashes := fs.Int("crashes", 1, "crash budget per execution")
	maxRuns := fs.Int("maxruns", 0, "bound the number of executions (0 = library default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, expectViolation, err := configFor(*obj)
	if err != nil {
		return err
	}
	cfg.MaxCrashes = *crashes
	cfg.MaxRuns = *maxRuns
	stats, runErr := explore.Run(cfg)
	fmt.Printf("%s: %d executions enumerated, %d crashes injected, max decision depth %d, complete=%v\n",
		*obj, stats.Runs, stats.Crashes, stats.MaxDepth, stats.Complete)
	if expectViolation {
		if runErr == nil {
			return fmt.Errorf("expected the strawman to violate NRL, but no violation was found")
		}
		fmt.Printf("violation found, as Theorem 4 predicts:\n%v\n", runErr)
		return nil
	}
	if runErr != nil {
		return runErr
	}
	fmt.Println("every enumerated execution satisfies NRL")
	return nil
}

func configFor(obj string) (explore.Config, bool, error) {
	switch obj {
	case "register":
		return explore.Config{
			Procs: 2,
			Build: func(sys *proc.System) map[int]func(*proc.Ctx) {
				r := core.NewRegister(sys, "x", 0)
				return map[int]func(*proc.Ctx){
					1: func(c *proc.Ctx) { r.Write(c, core.Distinct(1, 1, 0)) },
					2: func(c *proc.Ctx) { r.Write(c, core.Distinct(2, 1, 0)) },
				}
			},
			Models: func(string) spec.Model { return spec.Register{} },
		}, false, nil
	case "cas":
		return explore.Config{
			Procs: 2,
			Build: func(sys *proc.System) map[int]func(*proc.Ctx) {
				o := core.NewCASObject(sys, "c")
				return map[int]func(*proc.Ctx){
					1: func(c *proc.Ctx) { o.CAS(c, 0, core.DistinctCAS(1, 1, 0)) },
					2: func(c *proc.Ctx) { o.CAS(c, 0, core.DistinctCAS(2, 1, 0)) },
				}
			},
			Models: func(string) spec.Model { return spec.CAS{} },
		}, false, nil
	case "counter":
		return explore.Config{
			Procs: 2,
			Build: func(sys *proc.System) map[int]func(*proc.Ctx) {
				ctr := objects.NewCounter(sys, "ctr")
				return map[int]func(*proc.Ctx){
					1: func(c *proc.Ctx) { ctr.Inc(c) },
					2: func(c *proc.Ctx) { ctr.Inc(c) },
				}
			},
			Models: func(obj string) spec.Model {
				if obj == "ctr" {
					return spec.Counter{}
				}
				return spec.Register{}
			},
			MaxRuns: 50000, // the full space is too large; DFS prefix
		}, false, nil
	case "strawman":
		return explore.Config{
			Procs: 2,
			Build: func(sys *proc.System) map[int]func(*proc.Ctx) {
				o := valency.NewRetryTAS(sys, "t")
				return map[int]func(*proc.Ctx){
					1: func(c *proc.Ctx) { o.TestAndSet(c) },
					2: func(c *proc.Ctx) { o.TestAndSet(c) },
				}
			},
			Models: func(string) spec.Model { return spec.TAS{} },
		}, true, nil
	default:
		return explore.Config{}, false, fmt.Errorf("unknown configuration %q", obj)
	}
}
