package main

import "testing"

func TestRunAllObjectsSmall(t *testing.T) {
	if err := run([]string{"-seeds", "3", "-ops", "3"}); err != nil {
		t.Errorf("run = %v", err)
	}
}

func TestRunSingleObjectVerbose(t *testing.T) {
	if err := run([]string{"-obj", "counter", "-seeds", "2", "-v"}); err != nil {
		t.Errorf("run = %v", err)
	}
}

func TestRunUnknownObject(t *testing.T) {
	if err := run([]string{"-obj", "nope"}); err == nil {
		t.Error("run accepted an unknown object")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("run accepted a bad flag")
	}
}
