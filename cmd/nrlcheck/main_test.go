package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

func golden(t *testing.T, name string, wantCode int, args ...string) string {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	if code != wantCode {
		t.Fatalf("run(%v) = exit %d, want %d\nstdout:\n%s\nstderr:\n%s",
			args, code, wantCode, out.String(), errOut.String())
	}
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, out.Bytes(), want)
	}
	return out.String()
}

// TestCounterGolden: a clean run exits 0 with a deterministic summary
// (controlled scheduler, seeded picker and injector, no wall-clock).
func TestCounterGolden(t *testing.T) {
	golden(t, "counter", exitClean, "-obj", "counter", "-seeds", "5", "-ops", "3")
}

// TestBrokenGolden: the broken strawman exits 1 and prints the violating
// history (the negative control for the checker wiring).
func TestBrokenGolden(t *testing.T) {
	o := golden(t, "broken", exitViolation, "-obj", "broken", "-seeds", "5", "-ops", "2")
	if !strings.Contains(o, "VIOLATION") || !strings.Contains(o, "history:") {
		t.Errorf("violation output missing history:\n%s", o)
	}
}

// TestStuckGolden: a livelocking workload exits 2 with the watchdog's
// structured report instead of a raw panic.
func TestStuckGolden(t *testing.T) {
	o := golden(t, "stuck", exitStuck, "-obj", "stuck", "-procs", "1", "-seeds", "5", "-ops", "1", "-rate", "0.2", "-awaitbudget", "500")
	for _, want := range []string{"STUCK", "stuck report", "verdict:"} {
		if !strings.Contains(o, want) {
			t.Errorf("stuck output missing %q:\n%s", want, o)
		}
	}
}

func TestRunAllObjectsSmall(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-seeds", "3", "-ops", "3"}, &out, &errOut); code != exitClean {
		t.Errorf("run = exit %d\n%s%s", code, out.String(), errOut.String())
	}
}

func TestRunSingleObjectVerbose(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-obj", "counter", "-seeds", "2", "-v"}, &out, &errOut); code != exitClean {
		t.Errorf("run = exit %d", code)
	}
	if !strings.Contains(out.String(), "seed 0: ok") {
		t.Errorf("verbose output missing per-run lines:\n%s", out.String())
	}
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{{"-obj", "nope"}, {"-bogus"}} {
		var out, errOut bytes.Buffer
		if code := run(args, &out, &errOut); code != exitUsage {
			t.Errorf("run(%v) = exit %d, want %d", args, code, exitUsage)
		}
	}
}
