// Command nrlcheck stress-tests the recoverable objects: it runs seeded
// adversarial schedules with random crash injection against the chosen
// workload, records every history, and machine-checks each against
// nesting-safe recoverable linearizability (Definition 4).
//
// Usage:
//
//	nrlcheck [-obj NAME|all] [-procs N] [-ops N] [-seeds N] [-rate P] [-v]
//
// Exit codes: 0 all histories NRL, 1 a counterexample was found (its
// history is printed), 2 a run livelocked (the watchdog's stuck report is
// printed), 3 usage error.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"nrl/internal/chaos"
	"nrl/internal/harness"
	"nrl/internal/history"
	"nrl/internal/proc"
)

// Exit codes (shared convention with nrlsweep and nrlchaos).
const (
	exitClean     = 0
	exitViolation = 1
	exitStuck     = 2
	exitUsage     = 3
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("nrlcheck", flag.ContinueOnError)
	fs.SetOutput(errOut)
	obj := fs.String("obj", "all", "workload: "+harness.WorkloadUsage())
	procs := fs.Int("procs", 3, "number of processes (clamped by the workload)")
	ops := fs.Int("ops", 6, "operations per process per run")
	seeds := fs.Int("seeds", 50, "number of seeded runs")
	rate := fs.Float64("rate", 0.02, "crash probability per step")
	verbose := fs.Bool("v", false, "print per-run statistics")
	awaitBudget := fs.Int("awaitbudget", 0, "await iterations before the watchdog declares a livelock (0 = default)")
	checkBudget := fs.Int("budget", chaos.DefaultCheckBudget, "WGL search budget per history (degrades to windowed prefixes when exceeded)")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}

	var loads []harness.Workload
	if *obj == "all" {
		loads = harness.RealWorkloads()
	} else {
		w, ok := harness.WorkloadByName(*obj)
		if !ok {
			fmt.Fprintf(errOut, "nrlcheck: unknown workload %q (want %s)\n", *obj, harness.WorkloadUsage())
			return exitUsage
		}
		loads = []harness.Workload{w}
	}
	for _, w := range loads {
		np := w.Procs(*procs)
		totalCrashes := 0
		for seed := 0; seed < *seeds; seed++ {
			h, crashes, err := runOnce(w, np, *ops, *rate, int64(seed), *awaitBudget, *checkBudget)
			totalCrashes += crashes
			var se *proc.StuckError
			if errors.As(err, &se) {
				fmt.Fprintf(out, "%s seed %d: STUCK\n%s\n", w.Name, seed, se.Report.String())
				return exitStuck
			}
			if err != nil {
				fmt.Fprintf(out, "%s seed %d: VIOLATION\n%v\n\nhistory:\n%s", w.Name, seed, err, h)
				fmt.Fprintln(errOut, "nrlcheck:", w.Name, "NRL violated at seed", seed)
				return exitViolation
			}
			if *verbose {
				fmt.Fprintf(out, "%s seed %d: ok (%d steps, %d crashes)\n", w.Name, seed, h.Len(), crashes)
			}
		}
		fmt.Fprintf(out, "%-12s ok: %d runs x %d procs x %d ops, %d crashes injected, all NRL\n",
			w.Name, *seeds, np, *ops, totalCrashes)
	}
	return exitClean
}

// runOnce performs one seeded run. It returns a *proc.StuckError (wrapped)
// when the run livelocked, or the NRL checker's verdict otherwise. The
// verdict is budgeted: histories the WGL search cannot settle within
// checkBudget nodes degrade to chaos.CheckWindowed's sound prefix check
// instead of hanging the CLI.
func runOnce(w harness.Workload, procs, ops int, rate float64, seed int64, awaitBudget, checkBudget int) (history.History, int, error) {
	rec := history.NewRecorder()
	inj := &proc.Random{Rate: rate, Seed: seed, MaxCrashes: procs * 2}
	sys := proc.NewSystem(proc.Config{
		Procs:         procs,
		Recorder:      rec,
		Injector:      inj,
		Scheduler:     proc.NewControlled(proc.RandomPicker(seed)),
		AwaitBudget:   awaitBudget,
		RecoverPanics: true,
	})
	sys.Run(w.Build(sys, procs, ops))
	h := rec.History()
	for _, f := range sys.Failures() {
		return h, inj.Crashes(), f
	}
	violation, _ := chaos.CheckWindowed(w.Models, h, checkBudget)
	return h, inj.Crashes(), violation
}
