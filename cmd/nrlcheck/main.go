// Command nrlcheck stress-tests the recoverable objects: it runs seeded
// adversarial schedules with random crash injection against the chosen
// object, records every history, and machine-checks each against
// nesting-safe recoverable linearizability (Definition 4). A non-zero
// exit means a counterexample was found; its history is printed.
//
// Usage:
//
//	nrlcheck [-obj counter|register|cas|tas|faa|maxreg|stack|queue|lock|universal|all]
//	         [-procs N] [-ops N] [-seeds N] [-rate P] [-v]
package main

import (
	"flag"
	"fmt"
	"os"

	"nrl"
	"nrl/internal/history"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "nrlcheck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("nrlcheck", flag.ContinueOnError)
	obj := fs.String("obj", "all", "object under test: counter, register, cas, tas, faa, maxreg, stack, queue, lock, universal, wf-universal or all")
	procs := fs.Int("procs", 3, "number of processes")
	ops := fs.Int("ops", 6, "operations per process per run")
	seeds := fs.Int("seeds", 50, "number of seeded runs")
	rate := fs.Float64("rate", 0.02, "crash probability per step")
	verbose := fs.Bool("v", false, "print per-run statistics")
	if err := fs.Parse(args); err != nil {
		return err
	}

	objects := []string{"counter", "register", "cas", "tas", "faa", "maxreg", "stack", "queue", "lock", "universal", "wf-universal"}
	if *obj != "all" {
		objects = []string{*obj}
	}
	for _, name := range objects {
		w, ok := workloads[name]
		if !ok {
			return fmt.Errorf("unknown object %q", name)
		}
		totalCrashes := 0
		for seed := 0; seed < *seeds; seed++ {
			h, crashes, err := runOnce(w, *procs, *ops, *rate, int64(seed))
			totalCrashes += crashes
			if err != nil {
				fmt.Printf("%s seed %d: VIOLATION\n%v\n\nhistory:\n%s", name, seed, err, h)
				return fmt.Errorf("%s: NRL violated at seed %d", name, seed)
			}
			if *verbose {
				fmt.Printf("%s seed %d: ok (%d steps, %d crashes)\n", name, seed, h.Len(), crashes)
			}
		}
		fmt.Printf("%-8s ok: %d runs x %d procs x %d ops, %d crashes injected, all NRL\n",
			name, *seeds, *procs, *ops, totalCrashes)
	}
	return nil
}

// workload builds the object under test and returns the per-process body
// plus the model wiring for the checker.
type workload func(sys *nrl.System, procs, ops int) (body func(*nrl.Ctx), models nrl.ModelFor)

var workloads = map[string]workload{
	"counter": func(sys *nrl.System, procs, ops int) (func(*nrl.Ctx), nrl.ModelFor) {
		ctr := nrl.NewCounter(sys, "ctr")
		return func(c *nrl.Ctx) {
				for i := 0; i < ops; i++ {
					ctr.Inc(c)
					if i%2 == 1 {
						ctr.Read(c)
					}
				}
			},
			nrl.Models(map[string]nrl.Model{"ctr": nrl.CounterModel{}})
	},
	"register": func(sys *nrl.System, procs, ops int) (func(*nrl.Ctx), nrl.ModelFor) {
		r := nrl.NewRegister(sys, "reg", 0)
		return func(c *nrl.Ctx) {
				for i := 0; i < ops; i++ {
					if i%3 == 2 {
						r.Read(c)
					} else {
						r.Write(c, nrl.Distinct(c.P(), uint32(i+1), uint32(i)))
					}
				}
			},
			nrl.Models(map[string]nrl.Model{"reg": nrl.RegisterModel{}})
	},
	"cas": func(sys *nrl.System, procs, ops int) (func(*nrl.Ctx), nrl.ModelFor) {
		o := nrl.NewCASObject(sys, "cas")
		return func(c *nrl.Ctx) {
				for i := 0; i < ops; i++ {
					cur := o.Read(c)
					o.CAS(c, cur, nrl.DistinctCAS(c.P(), uint32(i+1), uint32(i)))
				}
			},
			nrl.Models(map[string]nrl.Model{"cas": nrl.CASModel{}})
	},
	"tas": func(sys *nrl.System, procs, ops int) (func(*nrl.Ctx), nrl.ModelFor) {
		o := nrl.NewTAS(sys, "tas")
		return func(c *nrl.Ctx) { o.TestAndSet(c) },
			nrl.Models(map[string]nrl.Model{"tas": nrl.TASModel{}})
	},
	"faa": func(sys *nrl.System, procs, ops int) (func(*nrl.Ctx), nrl.ModelFor) {
		f := nrl.NewFAA(sys, "faa")
		return func(c *nrl.Ctx) {
				for i := 0; i < ops; i++ {
					f.Add(c, uint64(c.P()))
				}
			},
			nrl.Models(map[string]nrl.Model{"faa": nrl.FAAModel{}})
	},
	"maxreg": func(sys *nrl.System, procs, ops int) (func(*nrl.Ctx), nrl.ModelFor) {
		m := nrl.NewMaxRegister(sys, "maxreg")
		return func(c *nrl.Ctx) {
				for i := 0; i < ops; i++ {
					m.WriteMax(c, uint64(c.P()*100+i))
					if i%2 == 1 {
						m.ReadMax(c)
					}
				}
			},
			nrl.Models(map[string]nrl.Model{"maxreg": nrl.MaxRegisterModel{}})
	},
	"lock": func(sys *nrl.System, procs, ops int) (func(*nrl.Ctx), nrl.ModelFor) {
		l := nrl.NewLock(sys, "lock")
		return func(c *nrl.Ctx) {
				for i := 0; i < ops; i++ {
					l.Acquire(c)
					l.Release(c)
				}
			},
			nrl.Models(map[string]nrl.Model{
				"lock":      nrl.MutexModel{},
				"lock.next": nrl.FAAModel{},
			})
	},
	"queue": func(sys *nrl.System, procs, ops int) (func(*nrl.Ctx), nrl.ModelFor) {
		q := nrl.NewQueue(sys, "q", 4096)
		return func(c *nrl.Ctx) {
				for i := 0; i < ops; i++ {
					q.Enqueue(c, uint64(c.P()*1000+i))
					if i%2 == 1 {
						q.Dequeue(c)
					}
				}
			},
			nrl.Models(map[string]nrl.Model{"q": nrl.QueueModel{}})
	},
	"universal": func(sys *nrl.System, procs, ops int) (func(*nrl.Ctx), nrl.ModelFor) {
		u := nrl.NewUniversal(sys, "u", nrl.QueueModel{}, 4096, []string{"ENQ", "DEQ"})
		return func(c *nrl.Ctx) {
				for i := 0; i < ops; i++ {
					u.Invoke(c, "ENQ", uint64(c.P()*1000+i))
					if i%2 == 1 {
						u.Invoke(c, "DEQ")
					}
				}
			},
			nrl.Models(map[string]nrl.Model{"u": nrl.QueueModel{}})
	},
	"wf-universal": func(sys *nrl.System, procs, ops int) (func(*nrl.Ctx), nrl.ModelFor) {
		u := nrl.NewWaitFreeUniversal(sys, "w", nrl.CounterModel{}, 4096, []string{"INC", "READ"})
		return func(c *nrl.Ctx) {
				for i := 0; i < ops; i++ {
					u.Invoke(c, "INC")
					if i%2 == 1 {
						u.Invoke(c, "READ")
					}
				}
			},
			nrl.Models(map[string]nrl.Model{"w": nrl.CounterModel{}})
	},
	"stack": func(sys *nrl.System, procs, ops int) (func(*nrl.Ctx), nrl.ModelFor) {
		s := nrl.NewStack(sys, "stk", 4096)
		return func(c *nrl.Ctx) {
				for i := 0; i < ops; i++ {
					s.Push(c, uint64(c.P()*1000+i))
					if i%2 == 1 {
						s.Pop(c)
					}
				}
			},
			nrl.Models(map[string]nrl.Model{"stk": nrl.StackModel{}})
	},
}

func runOnce(w workload, procs, ops int, rate float64, seed int64) (history.History, int, error) {
	rec := nrl.NewRecorder()
	inj := &nrl.RandomCrash{Rate: rate, Seed: seed, MaxCrashes: procs * 2}
	sys := nrl.NewSystem(nrl.Config{
		Procs:     procs,
		Recorder:  rec,
		Injector:  inj,
		Scheduler: nrl.NewControlled(nrl.RandomPicker(seed)),
	})
	body, models := w(sys, procs, ops)
	bodies := make(map[int]func(*nrl.Ctx), procs)
	for p := 1; p <= procs; p++ {
		bodies[p] = body
	}
	sys.Run(bodies)
	h := rec.History()
	return h, inj.Crashes(), nrl.CheckNRL(models, h)
}
