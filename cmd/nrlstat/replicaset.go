package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"nrl/internal/persist"
)

// isReplicaRoot reports whether dir looks like a replica-set root: a
// directory whose members are the r0, r1, ... subdirectories a
// replica.Set lays out.
func isReplicaRoot(dir string) bool {
	fi, err := os.Stat(filepath.Join(dir, "r0"))
	return err == nil && fi.IsDir()
}

// replicaMembers lists the rN member directories of a set root, in
// index order. Gaps are filled in: a wiped r1 between a surviving r0
// and r2 is still a member, and must show up as a failed scan rather
// than silently vanish from the report.
func replicaMembers(root string) []string {
	max := -1
	ents, err := os.ReadDir(root)
	if err != nil {
		return nil
	}
	for _, e := range ents {
		var n int
		if e.IsDir() && len(e.Name()) > 1 && e.Name()[0] == 'r' {
			if _, err := fmt.Sscanf(e.Name(), "r%d", &n); err == nil && n > max {
				max = n
			}
		}
	}
	names := make([]string, 0, max+1)
	for i := 0; i <= max; i++ {
		names = append(names, fmt.Sprintf("r%d", i))
	}
	return names
}

// runReplicaForensics reports a replica set's per-member durable
// credentials and where each member's log diverges from the member the
// next election would pick: the first sequence whose record fingerprint
// differs, the stale suffix an epoch fence will wipe at rejoin.
func runReplicaForensics(root string, names []string, w io.Writer) error {
	type member struct {
		name string
		rep  persist.ScanReport
		err  error
	}
	ms := make([]member, len(names))
	best := -1
	for i, name := range names {
		rep, err := persist.ScanDir(filepath.Join(root, name))
		ms[i] = member{name: name, rep: rep, err: err}
		if err != nil {
			continue
		}
		if best < 0 || rep.Epoch > ms[best].rep.Epoch ||
			(rep.Epoch == ms[best].rep.Epoch && rep.Prefix > ms[best].rep.Prefix) {
			best = i
		}
	}
	fmt.Fprintf(w, "replica set %s: %d members, quorum %d\n\n", root, len(ms), len(ms)/2+1)
	if best < 0 {
		fmt.Fprintln(w, "no member scans clean; nothing to elect")
		for _, m := range ms {
			fmt.Fprintf(w, "  %s: %v\n", m.name, m.err)
		}
		return nil
	}

	// Fingerprint index of the election winner, for divergence checks.
	ref := map[uint64]uint32{}
	for _, rs := range ms[best].rep.RecSums {
		ref[rs.Seq] = rs.Sum
	}

	fmt.Fprintf(w, "%-6s %-8s %6s %8s %8s %6s %10s %s\n",
		"member", "role", "epoch", "prefix", "records", "torn", "divergence", "notes")
	for i, m := range ms {
		if m.err != nil {
			fmt.Fprintf(w, "%-6s %-8s %6s %8s %8s %6s %10s scan failed: %v\n",
				m.name, "-", "-", "-", "-", "-", "-", m.err)
			continue
		}
		role := "follower"
		if i == best {
			role = "elect"
		}
		div := "-"
		notes := ""
		if i != best {
			switch d := divergeAt(m.rep, ref); {
			case d > 0:
				div = fmt.Sprintf("seq %d", d)
				notes = "suffix differs from electee; wiped at rejoin"
			case m.rep.Epoch < ms[best].rep.Epoch:
				notes = "stale epoch; catches up at rejoin"
			case m.rep.Prefix < ms[best].rep.Prefix:
				notes = fmt.Sprintf("behind by %d records", ms[best].rep.Prefix-m.rep.Prefix)
			}
		}
		if !m.rep.ManifestOK {
			if notes != "" {
				notes += "; "
			}
			notes += "manifest damaged"
		}
		fmt.Fprintf(w, "%-6s %-8s %6d %8d %8d %6d %10s %s\n",
			m.name, role, m.rep.Epoch, m.rep.Prefix, m.rep.Records, m.rep.PagesTorn, div, notes)
	}

	// The electee's flight recorder is the set's: the leader is the only
	// writer. Decode it if present.
	bbox := filepath.Join(root, ms[best].name, persist.BlackBoxName)
	if _, err := os.Stat(bbox); err == nil {
		fmt.Fprintln(w)
		return runForensics([]string{bbox}, w)
	}
	return nil
}

// divergeAt returns the first sequence where m's record fingerprint
// contradicts the reference index (0 if none): sequences the reference
// does not hold cannot contradict it.
func divergeAt(m persist.ScanReport, ref map[uint64]uint32) uint64 {
	for _, rs := range m.RecSums {
		if want, ok := ref[rs.Seq]; ok && want != rs.Sum {
			return rs.Seq
		}
	}
	return 0
}
