package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"

	"nrl"
	"nrl/internal/flightrec"
	"nrl/internal/telemetry"
	"nrl/internal/trace"
)

// runServe is the serve subcommand: run the counter scenario once with
// full instrumentation (trace ring + flight recorder), then keep the
// telemetry plane up on -addr until the process is killed. It exists
// for live inspection and for CI's endpoint smoke test; the metrics
// document reflects the completed workload.
func runServe(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("nrlstat serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:0", "listen address for the telemetry plane")
	procs := fs.Int("procs", 2, "number of processes in the warm-up workload")
	ops := fs.Int("ops", 50, "operations per process in the warm-up workload")
	once := fs.Bool("once", false, "self-scrape /metrics once and exit (for tests)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	ring := trace.NewRing(1 << 16)
	frec := flightrec.NewRecorder(flightrec.Options{})
	sys := nrl.NewSystem(nrl.Config{Procs: *procs, Tracer: ring, FlightRec: frec})
	ctr := nrl.NewCounter(sys, "ctr")
	bodies := map[int]func(*nrl.Ctx){}
	for p := 1; p <= *procs; p++ {
		bodies[p] = func(c *nrl.Ctx) {
			for i := 0; i < *ops; i++ {
				ctr.Inc(c)
			}
		}
	}
	if err := sys.Run(bodies); err != nil {
		return err
	}

	reg := telemetry.NewRegistry()
	reg.Register("nvm", telemetry.Memory(sys.Mem()))
	reg.Register("flightrec", telemetry.Recorder(frec))
	reg.Register("trace", telemetry.Ring(ring))
	reg.RegisterHealth("nvm", telemetry.MemoryHealth(sys.Mem()))

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Fprintf(w, "listening on %s\n", ln.Addr())
	srv := &http.Server{Handler: reg.Mux()}
	if *once {
		go srv.Serve(ln)
		defer srv.Close()
		resp, err := http.Get("http://" + ln.Addr().String() + "/metrics")
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		_, err = io.Copy(w, resp.Body)
		return err
	}
	return srv.Serve(ln)
}
