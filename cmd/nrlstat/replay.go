package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"nrl/internal/flightrec"
	"nrl/internal/flightrec/forensics"
	"nrl/internal/harness"
	"nrl/internal/persist"
	"nrl/internal/trace"
)

// runFrom is the -from mode: rebuild the profile from a captured JSONL
// event stream. The stream may end in a line torn by a crash (that is
// when such files are most interesting); the surviving events are
// profiled and the truncation reported.
func runFrom(path string, w io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events, note, err := trace.ReadJSONL(f)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "replay %s: %d events\n", path, len(events))
	if note != "" {
		fmt.Fprintf(w, "warning: %s\n", note)
	}
	fmt.Fprintln(w)
	p := trace.Build(events)
	for _, tab := range harness.ProfileTables(p) {
		tab.Fprint(w)
	}
	return nil
}

// runForensics is the forensics subcommand: decode a flight-recorder
// region — either a persist store directory (its bbox file) or the
// region file itself — and print the reconstructed report. A replica-
// set root (a directory holding r0, r1, ... member stores) gets the
// per-member divergence report instead.
func runForensics(args []string, w io.Writer) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: nrlstat forensics <replica-root | store-dir | bbox-file>")
	}
	path := args[0]
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		if isReplicaRoot(path) {
			return runReplicaForensics(path, replicaMembers(path), w)
		}
		path = filepath.Join(path, persist.BlackBoxName)
	}
	img, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	recs, valid, torn := flightrec.Decode(img)
	fmt.Fprintf(w, "flight recorder %s: %d valid records, %d torn slots\n\n", path, valid, torn)
	rep := forensics.Reconstruct(recs, torn)
	rep.Format(w)
	return nil
}
