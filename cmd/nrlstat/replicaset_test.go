package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nrl/internal/nvm"
	"nrl/internal/replica"
)

// replicaFixture builds a deterministic three-member replica set with a
// divergent member: the full set commits seqs 1..3, then r2 alone (a
// partitioned stale leader) commits its own seq 4, then r0+r1 commit
// the acknowledged seqs 4..5. r0 wins the next election and r2's seq 4
// contradicts it — the stale suffix the report must pinpoint.
func replicaFixture(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	ds := make([]string, 3)
	for i := range ds {
		ds[i] = filepath.Join(root, "r"+string(rune('0'+i)))
	}
	commit := func(s *replica.Set, v uint64) {
		t.Helper()
		if err := s.Commit([]nvm.WordUpdate{{Addr: 0, Val: v}}); err != nil {
			t.Fatalf("Commit(%d): %v", v, err)
		}
	}
	open := func(dirs ...string) *replica.Set {
		t.Helper()
		s, err := replica.Open(replica.Options{Dirs: dirs})
		if err != nil {
			t.Fatalf("replica.Open(%v): %v", dirs, err)
		}
		return s
	}

	s := open(ds...)
	for v := uint64(1); v <= 3; v++ {
		commit(s, v)
	}
	s.Close()

	stale := open(ds[2])
	commit(stale, 99)
	stale.Close()

	s = open(ds[0], ds[1])
	commit(s, 4)
	commit(s, 5)
	s.Close()
	return root
}

// TestReplicaForensicsGolden locks down the replica-set report: roles,
// per-member durable credentials, and the divergence point of the stale
// member.
func TestReplicaForensicsGolden(t *testing.T) {
	root := replicaFixture(t)
	var out bytes.Buffer
	if err := run([]string{"forensics", root}, &out); err != nil {
		t.Fatal(err)
	}
	got := strings.ReplaceAll(out.String(), root, "<root>")

	golden := filepath.Join("testdata", "replicaset.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("report differs from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}
}

// TestReplicaForensicsLostMember: a wiped member must be reported, not
// repaired or fatal.
func TestReplicaForensicsLostMember(t *testing.T) {
	root := replicaFixture(t)
	if err := os.RemoveAll(filepath.Join(root, "r1")); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"forensics", root}, &out); err != nil {
		t.Fatal(err)
	}
	o := out.String()
	if !strings.Contains(o, "scan failed") {
		t.Errorf("wiped member not reported:\n%s", o)
	}
	if !strings.Contains(o, "elect") {
		t.Errorf("no electee despite two healthy members:\n%s", o)
	}
	if _, err := os.Stat(filepath.Join(root, "r1")); !os.IsNotExist(err) {
		t.Error("forensics recreated the wiped member")
	}
}
