package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"nrl/internal/flightrec"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestSummaryGoldens locks down the profile summary of each scenario at
// the default flags: runs are deterministic (controlled scheduler, seeded
// picker and injector, no wall-clock in the output), so the exact tables
// are reproducible.
func TestSummaryGoldens(t *testing.T) {
	for _, s := range []string{"counter", "durable-log"} {
		t.Run(s, func(t *testing.T) {
			var out bytes.Buffer
			if err := run([]string{"-scenario", s, "-seed", "1"}, &out); err != nil {
				t.Fatalf("run(%s) = %v", s, err)
			}
			golden := filepath.Join("testdata", s+".golden")
			if *update {
				if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, out.Bytes(), want)
			}
		})
	}
}

// TestAllScenariosRun exercises every scenario (small, to keep the
// NRL-check search cheap) and sanity-checks the summary shape.
func TestAllScenariosRun(t *testing.T) {
	for _, s := range []string{"counter", "cas", "stack", "mixed", "durable-log"} {
		t.Run(s, func(t *testing.T) {
			var out bytes.Buffer
			if err := run([]string{"-scenario", s, "-ops", "30", "-procs", "2"}, &out); err != nil {
				t.Fatalf("run(%s) = %v", s, err)
			}
			o := out.String()
			for _, want := range []string{"Per-object profile", "Recovery depth", "check: ok", "flush/op", "fence/op"} {
				if !strings.Contains(o, want) {
					t.Errorf("summary missing %q:\n%s", want, o)
				}
			}
		})
	}
}

// TestTraceFlag: the acceptance path — -trace must emit one valid JSON
// object per line while the summary still prints.
func TestTraceFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.jsonl")
	var out bytes.Buffer
	if err := run([]string{"-scenario", "counter", "-seed", "1", "-trace", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(data), []byte("\n"))
	if len(lines) < 100 {
		t.Fatalf("suspiciously small trace: %d lines", len(lines))
	}
	for i, line := range lines {
		var e map[string]any
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", i+1, err)
		}
		if _, ok := e["kind"]; !ok {
			t.Fatalf("line %d has no kind: %s", i+1, line)
		}
	}
	if !strings.Contains(out.String(), "NRL check: ok") {
		t.Error("summary missing NRL check")
	}
}

func TestUnknownScenario(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scenario", "nope"}, &out); err == nil {
		t.Error("run accepted an unknown scenario")
	}
}

func TestBadFlags(t *testing.T) {
	for _, args := range [][]string{{"-bogus"}, {"-ops", "0"}, {"-procs", "-1"}} {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) accepted bad flags", args)
		}
	}
}

// TestReplayFrom: -from rebuilds the profile from a captured stream,
// and tolerates (and reports) a final line torn by a crash.
func TestReplayFrom(t *testing.T) {
	dir := t.TempDir()
	stream := filepath.Join(dir, "run.jsonl")
	var out bytes.Buffer
	if err := run([]string{"-procs", "2", "-ops", "20", "-trace", stream}, &out); err != nil {
		t.Fatal(err)
	}

	out.Reset()
	if err := run([]string{"-from", stream}, &out); err != nil {
		t.Fatal(err)
	}
	o := out.String()
	if !strings.Contains(o, "replay ") || !strings.Contains(o, "Per-object profile") {
		t.Errorf("replay output missing profile:\n%s", o)
	}
	if strings.Contains(o, "warning:") {
		t.Errorf("clean stream reported truncation:\n%s", o)
	}

	// Tear the tail, as a kill mid-write would.
	b, err := os.ReadFile(stream)
	if err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, "torn.jsonl")
	if err := os.WriteFile(torn, b[:len(b)-15], 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"-from", torn}, &out); err != nil {
		t.Fatalf("torn stream errored: %v", err)
	}
	if !strings.Contains(out.String(), "warning: final line") {
		t.Errorf("torn stream missing truncation warning:\n%s", out.String())
	}
}

// forensicsFixture builds the deterministic flight-recorder image behind
// testdata/forensics.bbox: a two-process story — p1 completes an
// increment (with checkpoint, fence and commit markers), p2 crashes
// mid-append and is caught re-entering recovery — plus one slot torn by
// hand, so the golden report locks down the partial-report path too.
func forensicsFixture(t *testing.T) []byte {
	t.Helper()
	rec := flightrec.NewRecorder(flightrec.Options{Slots: 32, Deep: true})
	rec.Record(flightrec.Rec{Kind: flightrec.KindBegin, P: 1, Depth: 1, Obj: "ctr", Op: "Inc", Val: 1})
	rec.Record(flightrec.Rec{Kind: flightrec.KindCheckpoint, P: 1, Depth: 1, Obj: "ctr", Op: "Inc", LI: 2})
	rec.Record(flightrec.Rec{Kind: flightrec.KindBegin, P: 2, Depth: 1, Obj: "log", Op: "Append", Val: 9})
	rec.RecordFence(1, 2)
	rec.RecordCommit(1, 2)
	rec.Record(flightrec.Rec{Kind: flightrec.KindEnd, P: 1, Depth: 1, Obj: "ctr", Op: "Inc", Val: 2})
	rec.Record(flightrec.Rec{Kind: flightrec.KindCrash, P: 2, Depth: 1, Obj: "log", Op: "Append", LI: 3})
	rec.Record(flightrec.Rec{Kind: flightrec.KindRecoverEnter, P: 2, Depth: 1, Obj: "log", Op: "Append", LI: 3, Attempt: 1})
	img := make([]byte, rec.SizeBytes())
	if err := rec.Sync(func(b []byte, off int64) error {
		copy(img[off:], b)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Tear the checkpoint's slot (record seq 2 -> slot 1, payload byte).
	img[32+32+12] ^= 0xff
	return img
}

// TestForensicsGolden locks down the forensics subcommand's recovery
// report against the committed flight-recorder image.
func TestForensicsGolden(t *testing.T) {
	bbox := filepath.Join("testdata", "forensics.bbox")
	golden := filepath.Join("testdata", "forensics.golden")
	if *update {
		if err := os.WriteFile(bbox, forensicsFixture(t), 0o644); err != nil {
			t.Fatal(err)
		}
	} else if want, err := os.ReadFile(bbox); err != nil {
		t.Fatalf("missing committed image (run with -update): %v", err)
	} else if got := forensicsFixture(t); !bytes.Equal(got, want) {
		t.Fatalf("fixture drifted from committed image: regenerate with -update and review the golden diff")
	}

	var out bytes.Buffer
	if err := run([]string{"forensics", bbox}, &out); err != nil {
		t.Fatal(err)
	}
	if *update {
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("forensics report differs from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, out.Bytes(), want)
	}
}

// TestServeOnce: the serve subcommand brings the telemetry plane up and
// its metrics document is well-formed JSON reflecting the workload.
func TestServeOnce(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"serve", "-once", "-procs", "2", "-ops", "10"}, &out); err != nil {
		t.Fatal(err)
	}
	o := out.String()
	i := strings.Index(o, "{")
	if i < 0 {
		t.Fatalf("no JSON document in output:\n%s", o)
	}
	var flat map[string]any
	if err := json.Unmarshal([]byte(o[i:]), &flat); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, o)
	}
	for _, k := range []string{"nvm.ops_total", "flightrec.seq", "trace.events_total"} {
		if _, ok := flat[k]; !ok {
			t.Errorf("metrics missing %q", k)
		}
	}
}
