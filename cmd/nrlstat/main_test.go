package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestSummaryGoldens locks down the profile summary of each scenario at
// the default flags: runs are deterministic (controlled scheduler, seeded
// picker and injector, no wall-clock in the output), so the exact tables
// are reproducible.
func TestSummaryGoldens(t *testing.T) {
	for _, s := range []string{"counter", "durable-log"} {
		t.Run(s, func(t *testing.T) {
			var out bytes.Buffer
			if err := run([]string{"-scenario", s, "-seed", "1"}, &out); err != nil {
				t.Fatalf("run(%s) = %v", s, err)
			}
			golden := filepath.Join("testdata", s+".golden")
			if *update {
				if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, out.Bytes(), want)
			}
		})
	}
}

// TestAllScenariosRun exercises every scenario (small, to keep the
// NRL-check search cheap) and sanity-checks the summary shape.
func TestAllScenariosRun(t *testing.T) {
	for _, s := range []string{"counter", "cas", "stack", "mixed", "durable-log"} {
		t.Run(s, func(t *testing.T) {
			var out bytes.Buffer
			if err := run([]string{"-scenario", s, "-ops", "30", "-procs", "2"}, &out); err != nil {
				t.Fatalf("run(%s) = %v", s, err)
			}
			o := out.String()
			for _, want := range []string{"Per-object profile", "Recovery depth", "check: ok", "flush/op", "fence/op"} {
				if !strings.Contains(o, want) {
					t.Errorf("summary missing %q:\n%s", want, o)
				}
			}
		})
	}
}

// TestTraceFlag: the acceptance path — -trace must emit one valid JSON
// object per line while the summary still prints.
func TestTraceFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.jsonl")
	var out bytes.Buffer
	if err := run([]string{"-scenario", "counter", "-seed", "1", "-trace", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(data), []byte("\n"))
	if len(lines) < 100 {
		t.Fatalf("suspiciously small trace: %d lines", len(lines))
	}
	for i, line := range lines {
		var e map[string]any
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", i+1, err)
		}
		if _, ok := e["kind"]; !ok {
			t.Fatalf("line %d has no kind: %s", i+1, line)
		}
	}
	if !strings.Contains(out.String(), "NRL check: ok") {
		t.Error("summary missing NRL check")
	}
}

func TestUnknownScenario(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scenario", "nope"}, &out); err == nil {
		t.Error("run accepted an unknown scenario")
	}
}

func TestBadFlags(t *testing.T) {
	for _, args := range [][]string{{"-bogus"}, {"-ops", "0"}, {"-procs", "-1"}} {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) accepted bad flags", args)
		}
	}
}
