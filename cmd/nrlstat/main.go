// Command nrlstat runs a workload with tracing enabled and prints its
// profile: per-object and per-process operation counts, NVRAM traffic
// (including flushes and fences per completed operation), step-latency
// quantiles and the recovery-depth distribution of the injected crashes.
// It is the observability companion to cmd/nrltrace (which prints the
// raw history): nrltrace shows what happened, nrlstat shows how much.
//
// Runs are deterministic: a controlled scheduler with a seeded picker
// and a seeded crash injector, and no wall-clock times in the output.
//
// Usage:
//
//	nrlstat [-scenario counter|cas|stack|mixed|durable-log]
//	        [-procs N] [-ops N] [-rate R] [-maxcrashes N] [-seed S]
//	        [-trace out.jsonl]
//	nrlstat -from run.jsonl
//	nrlstat forensics <store-dir | bbox-file>
//	nrlstat serve [-addr host:port] [-procs N] [-ops N]
//
// serve runs the counter workload once with full instrumentation and
// then keeps the live telemetry plane (/metrics, /healthz,
// /debug/pprof/) up on -addr until killed.
//
// -from replays a previously captured JSONL event stream through the
// same profile pipeline instead of running a workload; a final line
// torn by a crash is tolerated and reported. The forensics subcommand
// decodes a store's flight-recorder region and prints the reconstructed
// in-flight operation report (see internal/flightrec/forensics).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"nrl"
	"nrl/internal/core"
	"nrl/internal/durable"
	"nrl/internal/harness"
	"nrl/internal/nvm"
	"nrl/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "nrlstat:", err)
		os.Exit(1)
	}
}

type config struct {
	procs      int
	ops        int
	rate       float64
	maxCrashes int
	seed       int64
}

func run(args []string, w io.Writer) error {
	if len(args) > 0 && args[0] == "forensics" {
		return runForensics(args[1:], w)
	}
	if len(args) > 0 && args[0] == "serve" {
		return runServe(args[1:], w)
	}
	fs := flag.NewFlagSet("nrlstat", flag.ContinueOnError)
	scenario := fs.String("scenario", "counter", "workload: counter, cas, stack, mixed or durable-log")
	procs := fs.Int("procs", 3, "number of processes")
	ops := fs.Int("ops", 200, "operations per process")
	rate := fs.Float64("rate", 0.002, "crash probability per step")
	maxCrashes := fs.Int("maxcrashes", 10, "crash budget of the injector")
	seed := fs.Int64("seed", 1, "scheduler and injector seed")
	traceOut := fs.String("trace", "", "also write the full event stream to this JSONL file")
	from := fs.String("from", "", "replay a captured JSONL event stream instead of running a workload")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *from != "" {
		return runFrom(*from, w)
	}
	if *procs <= 0 || *ops <= 0 {
		return fmt.Errorf("-procs and -ops must be positive")
	}
	cfg := config{procs: *procs, ops: *ops, rate: *rate, maxCrashes: *maxCrashes, seed: *seed}

	// Every event goes into a ring (profiled below); -trace additionally
	// streams them to a file.
	ring := trace.NewRing(1 << 18)
	var tracer trace.Tracer = ring
	var sink *trace.JSONL
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		sink = trace.NewJSONL(f)
		tracer = trace.Multi{ring, sink}
	}

	var (
		check string
		err   error
	)
	switch *scenario {
	case "counter":
		check, err = counterScenario(cfg, tracer)
	case "cas":
		check, err = casScenario(cfg, tracer)
	case "stack":
		check, err = stackScenario(cfg, tracer)
	case "mixed":
		check, err = mixedScenario(cfg, tracer)
	case "durable-log":
		check, err = durableLogScenario(cfg, tracer)
	default:
		return fmt.Errorf("unknown scenario %q", *scenario)
	}
	if err != nil {
		return err
	}
	if sink != nil {
		if cerr := sink.Close(); cerr != nil {
			return fmt.Errorf("writing trace: %w", cerr)
		}
	}

	fmt.Fprintf(w, "scenario %s: procs=%d ops=%d rate=%g maxcrashes=%d seed=%d\n\n",
		*scenario, cfg.procs, cfg.ops, cfg.rate, cfg.maxCrashes, cfg.seed)
	p := trace.Build(ring.Events())
	for _, tab := range harness.ProfileTables(p) {
		tab.Fprint(w)
	}
	fmt.Fprintf(w, "trace: %d events (%d dropped from the profile window)\n", ring.Total(), ring.Dropped())
	fmt.Fprintln(w, check)
	return nil
}

// newSys builds the deterministic traced system every proc-model scenario
// uses: controlled scheduler, seeded picker, seeded bounded crash
// injector, history recorder.
func newSys(cfg config, tracer trace.Tracer) (*nrl.System, *nrl.Recorder) {
	rec := nrl.NewRecorder()
	sys := nrl.NewSystem(nrl.Config{
		Procs:     cfg.procs,
		Recorder:  rec,
		Injector:  &nrl.RandomCrash{Rate: cfg.rate, Seed: cfg.seed, MaxCrashes: cfg.maxCrashes},
		Scheduler: nrl.NewControlled(nrl.RandomPicker(cfg.seed)),
		Tracer:    tracer,
	})
	return sys, rec
}

// checkNRL verifies the recorded history and returns the summary line.
// The verdict is budgeted so a pathological history cannot hang the
// stats pipeline; a windowed verdict is labelled as such.
func checkNRL(rec *nrl.Recorder, models nrl.ModelFor) (string, error) {
	violation, partial := nrl.CheckWindowed(models, rec.History(), nrl.DefaultCheckBudget)
	if violation != nil {
		return "", fmt.Errorf("NRL check failed: %w", violation)
	}
	if partial {
		return "NRL check: ok (windowed prefix verdict; search budget hit)", nil
	}
	return "NRL check: ok", nil
}

func counterScenario(cfg config, tracer trace.Tracer) (string, error) {
	sys, rec := newSys(cfg, tracer)
	ctr := nrl.NewCounter(sys, "ctr")
	bodies := map[int]func(*nrl.Ctx){}
	for p := 1; p <= cfg.procs; p++ {
		bodies[p] = func(c *nrl.Ctx) {
			for i := 0; i < cfg.ops; i++ {
				ctr.Inc(c)
			}
		}
	}
	if err := sys.Run(bodies); err != nil {
		return "", err
	}
	if got, want := ctr.Read(sys.Proc(1).Ctx()), uint64(cfg.procs*cfg.ops); got != want {
		return "", fmt.Errorf("final counter = %d, want %d", got, want)
	}
	return checkNRL(rec, nrl.Models(map[string]nrl.Model{"ctr": nrl.CounterModel{}}))
}

func casScenario(cfg config, tracer trace.Tracer) (string, error) {
	sys, rec := newSys(cfg, tracer)
	o := nrl.NewCASObject(sys, "cas")
	bodies := map[int]func(*nrl.Ctx){}
	for p := 1; p <= cfg.procs; p++ {
		bodies[p] = func(c *nrl.Ctx) {
			pid := c.P()
			for i := 0; i < cfg.ops; i++ {
				seq := uint32(i%core.MaxCASSeq) + 1
				next := nrl.DistinctCAS(pid, seq, uint32(i))
				for !o.CAS(c, o.Read(c), next) {
				}
			}
		}
	}
	if err := sys.Run(bodies); err != nil {
		return "", err
	}
	return checkNRL(rec, nrl.Models(map[string]nrl.Model{"cas": nrl.CASModel{}}))
}

func stackScenario(cfg config, tracer trace.Tracer) (string, error) {
	sys, rec := newSys(cfg, tracer)
	st := nrl.NewStack(sys, "st", cfg.procs*cfg.ops+16)
	bodies := map[int]func(*nrl.Ctx){}
	for p := 1; p <= cfg.procs; p++ {
		bodies[p] = func(c *nrl.Ctx) {
			pid := uint64(c.P())
			for i := 0; i < cfg.ops; i++ {
				st.Push(c, pid<<32|uint64(i)+1)
				st.Pop(c)
			}
		}
	}
	if err := sys.Run(bodies); err != nil {
		return "", err
	}
	return checkNRL(rec, nrl.Models(map[string]nrl.Model{"st": nrl.StackModel{}}))
}

func mixedScenario(cfg config, tracer trace.Tracer) (string, error) {
	sys, rec := newSys(cfg, tracer)
	ctr := nrl.NewCounter(sys, "ctr")
	st := nrl.NewStack(sys, "st", cfg.procs*cfg.ops+16)
	mx := nrl.NewMaxRegister(sys, "mx")
	bodies := map[int]func(*nrl.Ctx){}
	for p := 1; p <= cfg.procs; p++ {
		bodies[p] = func(c *nrl.Ctx) {
			pid := uint64(c.P())
			for i := 0; i < cfg.ops; i++ {
				switch i % 3 {
				case 0:
					ctr.Inc(c)
				case 1:
					st.Push(c, pid<<32|uint64(i)+1)
					st.Pop(c)
				case 2:
					mx.WriteMax(c, uint64(i)+1)
				}
			}
		}
	}
	if err := sys.Run(bodies); err != nil {
		return "", err
	}
	return checkNRL(rec, nrl.Models(map[string]nrl.Model{
		"ctr": nrl.CounterModel{},
		"st":  nrl.StackModel{},
		"mx":  nrl.MaxRegisterModel{},
	}))
}

// durableLogScenario exercises the full-system-crash extension instead of
// the per-process model: appends to a durably linearizable log on
// buffered NVRAM, with a power failure (nvm.Memory.CrashAll) halfway.
// The log bypasses the proc operation layer, so the scenario emits the
// lifecycle events itself — invoke/response around each append (as
// process 1, the driver), crash/recover at the power failure — while the
// memory events come from the instrumented NVRAM, attributed to the log
// by allocation name. That makes flush/op and fence/op in the profile
// real numbers: this is the one scenario where persistence is explicit
// (buffered mode) rather than elided by ADR. The NRL check is replaced
// by a durable-prefix check. -procs, -rate and -maxcrashes are ignored.
func durableLogScenario(cfg config, tracer trace.Tracer) (string, error) {
	mem := nvm.New(nvm.WithMode(nvm.Buffered))
	mem.SetTracer(tracer)
	log := durable.NewLog(mem, "log", cfg.ops+1)
	appendOp := func(i int) {
		tracer.Emit(trace.Event{Kind: trace.Invoke, P: 1, Obj: "log", Op: "APPEND",
			Depth: 1, Addr: int32(nvm.InvalidAddr), Args: []uint64{uint64(i) + 1}})
		log.Append(uint64(i) + 1)
		tracer.Emit(trace.Event{Kind: trace.Response, P: 1, Obj: "log", Op: "APPEND",
			Depth: 1, Addr: int32(nvm.InvalidAddr)})
	}
	half := cfg.ops / 2
	for i := 0; i < half; i++ {
		appendOp(i)
	}
	mem.CrashAll()
	tracer.Emit(trace.Event{Kind: trace.Crash, P: 1, Obj: "log", Depth: 1,
		Addr: int32(nvm.InvalidAddr)})
	tracer.Emit(trace.Event{Kind: trace.Recover, P: 1, Obj: "log", Depth: 1,
		Addr: int32(nvm.InvalidAddr)})
	if got := log.Len(); got != uint64(half) {
		return "", fmt.Errorf("after power failure: log length %d, want %d", got, half)
	}
	for i := half; i < cfg.ops; i++ {
		appendOp(i)
	}
	for i := 0; i < cfg.ops; i++ {
		if got := log.Get(uint64(i)); got != uint64(i)+1 {
			return "", fmt.Errorf("record %d = %d, want %d", i, got, i+1)
		}
	}
	return "durable-prefix check: ok", nil
}
