// Command nrlbench regenerates the experiment tables of DESIGN.md
// Section 5 (E1–E9): the costs of nesting-safe recoverability over raw
// primitives, scaling, contention, crash rates, strictness, the blocking
// TAS recovery, checker cost and the persistence-mode ablation.
//
// Usage:
//
//	nrlbench [-ops N] [-exp E1,E3,...] [-trace out.jsonl]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nrl/internal/harness"
	"nrl/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "nrlbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("nrlbench", flag.ContinueOnError)
	ops := fs.Int("ops", 20000, "base operation count per measurement")
	expFlag := fs.String("exp", "all", "comma-separated experiments to run (E1..E10) or 'all'")
	traceOut := fs.String("trace", "", "write a JSONL event trace of the whole run to this file (skews timings)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	scale := harness.Scale{Ops: *ops}
	var sink *trace.JSONL
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		sink = trace.NewJSONL(f)
		scale.Tracer = sink
	}

	want := map[string]bool{}
	if *expFlag == "all" {
		for i := 1; i <= 10; i++ {
			want[fmt.Sprintf("E%d", i)] = true
		}
	} else {
		for _, e := range strings.Split(*expFlag, ",") {
			want[strings.ToUpper(strings.TrimSpace(e))] = true
		}
	}

	procs := []int{1, 2, 4, 8}
	experiments := []struct {
		id  string
		run func() *harness.Table
	}{
		{"E1", func() *harness.Table { return harness.E1PrimitiveOverhead(scale) }},
		{"E2", func() *harness.Table { return harness.E2CounterScaling(scale, procs) }},
		{"E3", func() *harness.Table { return harness.E3CASContention(scale, procs) }},
		{"E4", func() *harness.Table {
			return harness.E4CrashRateSweep(scale, []float64{0, 1e-4, 1e-3, 1e-2})
		}},
		{"E5", func() *harness.Table { return harness.E5Strictness(scale) }},
		{"E6", func() *harness.Table { return harness.E6TASRecoveryBlocking(scale, []int{2, 4, 8}) }},
		{"E7", func() *harness.Table { return harness.E7CheckerCost(scale, []int{120, 600, 1500, 3000}) }},
		{"E8", func() *harness.Table { return harness.E8PersistenceModes(scale) }},
		{"E9", func() *harness.Table { return harness.E9CompositeCost(scale) }},
		{"E10", func() *harness.Table { return harness.E10UniversalAblation(scale) }},
	}
	ran := 0
	for _, e := range experiments {
		if !want[e.id] {
			continue
		}
		e.run().Fprint(os.Stdout)
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiments selected (got -exp=%q)", *expFlag)
	}
	if sink != nil {
		if err := sink.Close(); err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
	}
	return nil
}
