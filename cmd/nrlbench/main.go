// Command nrlbench regenerates the experiment tables of DESIGN.md
// Section 5 (E1–E9): the costs of nesting-safe recoverability over raw
// primitives, scaling, contention, crash rates, strictness, the blocking
// TAS recovery, checker cost and the persistence-mode ablation.
//
// It is also the front end of the machine-comparable benchmark pipeline
// (internal/bench): -json runs the memory- and object-level suites and
// writes schema-versioned BENCH_nvm.json / BENCH_objects.json reports,
// and -compare diffs two such reports, failing (exit 1) on any ns/op or
// allocs/op regression beyond -threshold — the CI regression gate.
// -overhead checks the flight-recorder rows of an objects report against
// their bare baselines within the same report, failing when the recorder
// costs more than its budget (bench.RecorderOverheadBudget) or allocates
// on the record path. -alloccap checks a report against the suite's
// absolute allocs-per-op caps (bench.AllocCaps — 0 for every row of the
// objects suite since the frame-arena refactor), failing on any breach
// or on a capped benchmark missing from the report; unlike -compare,
// this gate needs no baseline, so a baseline that itself allocates can
// never grandfather an allocation in.
//
// Usage:
//
//	nrlbench [-ops N] [-exp E1,E3,...] [-trace out.jsonl]
//	nrlbench -json DIR [-suite nvm|objects|all] [-benchops N]
//	nrlbench -compare old.json new.json [-threshold 0.15]
//	nrlbench -overhead BENCH_objects.json
//	nrlbench -alloccap BENCH_objects.json
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"nrl/internal/bench"
	"nrl/internal/harness"
	"nrl/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "nrlbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("nrlbench", flag.ContinueOnError)
	ops := fs.Int("ops", 20000, "base operation count per measurement")
	expFlag := fs.String("exp", "all", "comma-separated experiments to run (E1..E10) or 'all'")
	traceOut := fs.String("trace", "", "write a JSONL event trace of the whole run to this file (skews timings)")
	jsonDir := fs.String("json", "", "run the benchmark suites and write BENCH_<suite>.json reports into this directory")
	suite := fs.String("suite", "all", "with -json: which suite to run (nvm, objects, all)")
	benchOps := fs.Int("benchops", 0, "with -json: total operations per benchmark (0 = default)")
	compare := fs.Bool("compare", false, "compare two BENCH_*.json reports (old new) and fail on regressions")
	threshold := fs.Float64("threshold", bench.DefaultThreshold, "with -compare: relative ns/op growth tolerated before failing")
	overhead := fs.String("overhead", "", "check the flight-recorder overhead budget within this objects report")
	allocCap := fs.String("alloccap", "", "check this report against the suite's absolute allocs-per-op caps")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *compare {
		return runCompare(fs.Args(), *threshold)
	}
	if *overhead != "" {
		return runOverhead(*overhead)
	}
	if *allocCap != "" {
		return runAllocCap(*allocCap)
	}
	if *jsonDir != "" {
		return runSuites(*jsonDir, *suite, *benchOps)
	}
	scale := harness.Scale{Ops: *ops}
	var sink *trace.JSONL
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		sink = trace.NewJSONL(f)
		scale.Tracer = sink
	}

	want := map[string]bool{}
	if *expFlag == "all" {
		for i := 1; i <= 10; i++ {
			want[fmt.Sprintf("E%d", i)] = true
		}
	} else {
		for _, e := range strings.Split(*expFlag, ",") {
			want[strings.ToUpper(strings.TrimSpace(e))] = true
		}
	}

	procs := []int{1, 2, 4, 8}
	experiments := []struct {
		id  string
		run func() *harness.Table
	}{
		{"E1", func() *harness.Table { return harness.E1PrimitiveOverhead(scale) }},
		{"E2", func() *harness.Table { return harness.E2CounterScaling(scale, procs) }},
		{"E3", func() *harness.Table { return harness.E3CASContention(scale, procs) }},
		{"E4", func() *harness.Table {
			return harness.E4CrashRateSweep(scale, []float64{0, 1e-4, 1e-3, 1e-2})
		}},
		{"E5", func() *harness.Table { return harness.E5Strictness(scale) }},
		{"E6", func() *harness.Table { return harness.E6TASRecoveryBlocking(scale, []int{2, 4, 8}) }},
		{"E7", func() *harness.Table { return harness.E7CheckerCost(scale, []int{120, 600, 1500, 3000}) }},
		{"E8", func() *harness.Table { return harness.E8PersistenceModes(scale) }},
		{"E9", func() *harness.Table { return harness.E9CompositeCost(scale) }},
		{"E10", func() *harness.Table { return harness.E10UniversalAblation(scale) }},
	}
	ran := 0
	for _, e := range experiments {
		if !want[e.id] {
			continue
		}
		e.run().Fprint(os.Stdout)
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiments selected (got -exp=%q)", *expFlag)
	}
	if sink != nil {
		if err := sink.Close(); err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
	}
	return nil
}

// runSuites executes the selected internal/bench suites and writes one
// BENCH_<suite>.json per suite into dir.
func runSuites(dir, suite string, benchOps int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	suites := bench.Suites()
	var names []string
	if suite == "all" {
		for name := range suites {
			names = append(names, name)
		}
		sort.Strings(names)
	} else {
		for _, name := range strings.Split(suite, ",") {
			name = strings.TrimSpace(name)
			if _, ok := suites[name]; !ok {
				return fmt.Errorf("unknown suite %q (have: nvm, objects, persist)", name)
			}
			names = append(names, name)
		}
	}
	defer bench.CleanupDirs()
	for _, name := range names {
		// Per-suite defaults: the file-backed persist suite fsyncs on
		// every op and cannot run at the in-memory suites' counts.
		opts := bench.SuiteOptions(name, bench.Options{Ops: benchOps})
		report := bench.RunSuite(name, suites[name], opts)
		path := filepath.Join(dir, "BENCH_"+name+".json")
		if err := report.WriteFile(path); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", path, len(report.Results))
	}
	return nil
}

// runCompare diffs a baseline report against a fresh one and returns a
// non-nil error (exit 1) when the regression gate trips.
func runCompare(paths []string, threshold float64) error {
	if len(paths) != 2 {
		return fmt.Errorf("-compare needs exactly two report paths (old new), got %d", len(paths))
	}
	base, err := bench.ReadFile(paths[0])
	if err != nil {
		return err
	}
	head, err := bench.ReadFile(paths[1])
	if err != nil {
		return err
	}
	c, err := bench.Compare(base, head, threshold)
	if err != nil {
		return err
	}
	c.Fprint(os.Stdout)
	return c.Gate()
}

// runAllocCap evaluates a report against its suite's absolute
// allocs-per-op caps and returns a non-nil error (exit 1) on any breach
// or missing capped benchmark.
func runAllocCap(path string) error {
	report, err := bench.ReadFile(path)
	if err != nil {
		return err
	}
	caps := bench.AllocCaps(report.Suite)
	if len(caps) == 0 {
		return fmt.Errorf("suite %q has no registered allocs-per-op caps", report.Suite)
	}
	results := bench.CheckAllocCaps(report, caps)
	fmt.Printf("absolute allocs-per-op caps (%s)\n", path)
	bench.FprintAllocCaps(os.Stdout, results)
	return bench.GateAllocCaps(results)
}

// runOverhead evaluates the recorder-overhead budget pairs within one
// report and returns a non-nil error (exit 1) on any breach.
func runOverhead(path string) error {
	report, err := bench.ReadFile(path)
	if err != nil {
		return err
	}
	results := bench.Overhead(report, bench.OverheadPairs())
	fmt.Printf("flight-recorder overhead (%s)\n", path)
	bench.FprintOverhead(os.Stdout, results)
	return bench.GateOverhead(results)
}
