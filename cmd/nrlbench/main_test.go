package main

import "testing"

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-ops", "400", "-exp", "E1"}); err != nil {
		t.Errorf("run = %v", err)
	}
}

func TestRunSelection(t *testing.T) {
	if err := run([]string{"-ops", "400", "-exp", "e5,E8"}); err != nil {
		t.Errorf("run = %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "E99"}); err == nil {
		t.Error("run accepted an unknown experiment")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("run accepted a bad flag")
	}
}
