package main

import "testing"

func TestScenarios(t *testing.T) {
	for _, s := range []string{"counter", "cas-helping", "tas-winner-crash"} {
		s := s
		t.Run(s, func(t *testing.T) {
			if err := run([]string{"-scenario", s}); err != nil {
				t.Errorf("run(%s) = %v", s, err)
			}
		})
	}
}

func TestUnknownScenario(t *testing.T) {
	if err := run([]string{"-scenario", "nope"}); err == nil {
		t.Error("run accepted an unknown scenario")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("run accepted a bad flag")
	}
}
