package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestScenarioGoldens locks down the exact output of every scenario at
// the default seed: the controlled scheduler, seeded picker and
// deterministic injectors make each run fully reproducible, so any drift
// in the model, the recorder or the renderer shows up as a diff.
func TestScenarioGoldens(t *testing.T) {
	for _, s := range []string{"counter", "cas-helping", "tas-winner-crash"} {
		t.Run(s, func(t *testing.T) {
			var out bytes.Buffer
			if err := run([]string{"-scenario", s, "-seed", "1"}, &out); err != nil {
				t.Fatalf("run(%s) = %v", s, err)
			}
			golden := filepath.Join("testdata", s+".golden")
			if *update {
				if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, out.Bytes(), want)
			}
		})
	}
}

// TestTraceFlag: -trace must produce one valid JSON event per line,
// including the crash/recover lifecycle of the scenario.
func TestTraceFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.jsonl")
	var out bytes.Buffer
	if err := run([]string{"-scenario", "counter", "-trace", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(data), []byte("\n"))
	if len(lines) == 0 {
		t.Fatal("empty trace file")
	}
	kinds := map[string]int{}
	for i, line := range lines {
		var e struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", i+1, err)
		}
		kinds[e.Kind]++
	}
	for _, want := range []string{"invoke", "response", "crash", "recover", "recover-done", "mem-read", "mem-write"} {
		if kinds[want] == 0 {
			t.Errorf("trace has no %q events (kinds: %v)", want, kinds)
		}
	}
}

func TestUnknownScenario(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scenario", "nope"}, &out); err == nil {
		t.Error("run accepted an unknown scenario")
	}
}

func TestBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("run accepted a bad flag")
	}
}
