// Command nrltrace runs a small crash-recovery scenario and prints the
// resulting history step by step, making the model's behaviour visible:
// invocations, responses, crash steps attributed to the inner-most
// pending operation, and matching recover steps.
//
// Usage:
//
//	nrltrace [-scenario counter|cas-helping|tas-winner-crash] [-seed N]
//	         [-trace out.jsonl]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"nrl"
	"nrl/internal/history"
	"nrl/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "nrltrace:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("nrltrace", flag.ContinueOnError)
	scenario := fs.String("scenario", "counter", "scenario: counter, cas-helping or tas-winner-crash")
	seed := fs.Int64("seed", 1, "scheduler seed")
	gantt := fs.Bool("gantt", true, "render an ASCII timeline of the history")
	traceOut := fs.String("trace", "", "write the structured event stream to this JSONL file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var sink *trace.JSONL
	var tracer trace.Tracer
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		sink = trace.NewJSONL(f)
		tracer = sink
	}
	var (
		h      history.History
		models nrl.ModelFor
		err    error
	)
	switch *scenario {
	case "counter":
		h, models, err = counterScenario(*seed, tracer)
	case "cas-helping":
		h, models, err = casHelpingScenario(tracer)
	case "tas-winner-crash":
		h, models, err = tasWinnerCrashScenario(tracer)
	default:
		return fmt.Errorf("unknown scenario %q", *scenario)
	}
	if err != nil {
		return err
	}
	if sink != nil {
		if cerr := sink.Close(); cerr != nil {
			return fmt.Errorf("writing trace: %w", cerr)
		}
	}
	fmt.Fprint(w, h)
	if *gantt {
		fmt.Fprintln(w, "\ntimeline:")
		fmt.Fprint(w, h.Gantt(64))
	}
	violation, partial := nrl.CheckWindowed(models, h, nrl.DefaultCheckBudget)
	if violation != nil {
		return fmt.Errorf("NRL check failed: %w", violation)
	}
	if partial {
		fmt.Fprintln(w, "\nNRL check: ok (windowed prefix verdict; search budget hit)")
	} else {
		fmt.Fprintln(w, "\nNRL check: ok")
	}
	return nil
}

// counterScenario: two processes increment a recoverable counter; one
// crashes inside the nested register WRITE (the paper's Algorithm 4
// walkthrough).
func counterScenario(seed int64, tracer nrl.Tracer) (history.History, nrl.ModelFor, error) {
	rec := nrl.NewRecorder()
	inj := &nrl.AtLine{Proc: 1, Obj: "ctr.R[1]", Op: "WRITE", Line: 5}
	sys := nrl.NewSystem(nrl.Config{
		Procs:     2,
		Recorder:  rec,
		Injector:  inj,
		Scheduler: nrl.NewControlled(nrl.RandomPicker(seed)),
		Tracer:    tracer,
	})
	ctr := nrl.NewCounter(sys, "ctr")
	sys.Run(map[int]func(*nrl.Ctx){
		1: func(c *nrl.Ctx) { ctr.Inc(c); ctr.Read(c) },
		2: func(c *nrl.Ctx) { ctr.Inc(c) },
	})
	if got := ctr.Read(sys.Proc(2).Ctx()); got != 2 {
		return history.History{}, nil, fmt.Errorf("final counter = %d, want 2", got)
	}
	return rec.History(), nrl.Models(map[string]nrl.Model{"ctr": nrl.CounterModel{}}), nil
}

// casHelpingScenario: p1's cas primitive succeeds, p1 crashes before
// reading the response, p2 overwrites (helping first through R[p1][p2]),
// and p1's recovery still reports success.
func casHelpingScenario(tracer nrl.Tracer) (history.History, nrl.ModelFor, error) {
	rec := nrl.NewRecorder()
	inj := &nrl.AtLine{Proc: 1, Obj: "cas", Op: "CAS", Line: 8}
	picker := func(candidates []int, step int) int {
		if !inj.Fired() {
			return candidates[0]
		}
		for _, c := range candidates {
			if c == 2 {
				return c
			}
		}
		return candidates[0]
	}
	sys := nrl.NewSystem(nrl.Config{
		Procs:     2,
		Recorder:  rec,
		Injector:  inj,
		Scheduler: nrl.NewControlled(picker),
		Tracer:    tracer,
	})
	o := nrl.NewCASObject(sys, "cas")
	v1 := nrl.DistinctCAS(1, 1, 11)
	v2 := nrl.DistinctCAS(2, 1, 22)
	var ok1 bool
	sys.Run(map[int]func(*nrl.Ctx){
		1: func(c *nrl.Ctx) { ok1 = o.CAS(c, 0, v1) },
		2: func(c *nrl.Ctx) { o.CAS(c, v1, v2) },
	})
	if !ok1 {
		return history.History{}, nil, fmt.Errorf("p1's recovered CAS reported failure")
	}
	return rec.History(), nrl.Models(map[string]nrl.Model{"cas": nrl.CASModel{}}), nil
}

// tasWinnerCrashScenario: the primitive winner crashes before declaring
// itself; its blocking recovery claims the win after the other process
// completes.
func tasWinnerCrashScenario(tracer nrl.Tracer) (history.History, nrl.ModelFor, error) {
	rec := nrl.NewRecorder()
	inj := &nrl.AtLine{Proc: 1, Obj: "tas", Op: "T&S", Line: 9}
	picker := func(candidates []int, step int) int {
		if !inj.Fired() {
			return candidates[0]
		}
		for _, c := range candidates {
			if c == 2 {
				return c
			}
		}
		return candidates[0]
	}
	sys := nrl.NewSystem(nrl.Config{
		Procs:     2,
		Recorder:  rec,
		Injector:  inj,
		Scheduler: nrl.NewControlled(picker),
		Tracer:    tracer,
	})
	o := nrl.NewTAS(sys, "tas")
	rets := make([]uint64, 3)
	sys.Run(map[int]func(*nrl.Ctx){
		1: func(c *nrl.Ctx) { rets[1] = o.TestAndSet(c) },
		2: func(c *nrl.Ctx) { rets[2] = o.TestAndSet(c) },
	})
	if rets[1] != 0 || rets[2] != 1 {
		return history.History{}, nil, fmt.Errorf("responses = %d,%d, want 0,1", rets[1], rets[2])
	}
	return rec.History(), nrl.Models(map[string]nrl.Model{"tas": nrl.TASModel{}}), nil
}
